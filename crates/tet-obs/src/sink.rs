//! Trace sinks and the handle the simulator emits through.
//!
//! The design goal is *zero cost when disabled*: a [`SinkHandle`] is an
//! `Option<Arc<..>>` plus a thread id, every emit site is `#[inline]`, and
//! the disabled path is a single branch on `Option::is_some` — no
//! allocation, no virtual call, no formatting.
//!
//! When enabled, events flow through the object-safe [`TraceSink`] trait.
//! Three implementations cover the common shapes:
//!
//! * [`RingSink`] — fixed-capacity lock-free ring that keeps the most
//!   recent events (flight-recorder style, safe to leave attached for
//!   millions of cycles);
//! * [`MemorySink`] — unbounded mutex-guarded vector (the per-run recorder
//!   `Machine` installs when full traces are requested);
//! * [`FanoutSink`] — tees one stream into several sinks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, TraceEvent};

/// Receives structured trace events. Implementations use interior
/// mutability; `emit` takes `&self` so one sink can be shared by the core,
/// the memory hierarchy and both SMT threads.
pub trait TraceSink {
    /// Accepts one event. Must not panic; dropping events is allowed.
    fn emit(&self, ev: TraceEvent);
}

/// A sink that discards everything (useful as an explicit placeholder).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn emit(&self, _ev: TraceEvent) {}
}

// ---------------------------------------------------------------------------
// RingSink
// ---------------------------------------------------------------------------

/// One slot of the ring. The sequence field makes torn reads detectable:
/// a writer stamps `seq = 0` (in progress), writes the payload, then stamps
/// `seq = position + 1` with release ordering.
struct Slot {
    seq: AtomicU64,
    ev: std::cell::UnsafeCell<TraceEvent>,
}

/// A fixed-capacity, lock-free, overwrite-oldest event ring.
///
/// Writers never block and never allocate: a slot index is claimed with one
/// `fetch_add`, the payload is written, and a per-slot sequence number is
/// published with release ordering. When the ring wraps, the oldest events
/// are overwritten — the ring always holds the *most recent* window, which
/// is what you want from a flight recorder attached to a long run.
///
/// `drain_recent` is intended to be called after the producing run has
/// quiesced; if called concurrently with writers it skips slots it observes
/// mid-write instead of returning torn data.
pub struct RingSink {
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: slot payloads are `Copy` plain-old-data; the per-slot sequence
// protocol (seq=0 while writing, seq=pos+1 once published, checked again
// after the read) means readers never *return* a torn event, and writers
// never read payloads at all.
unsafe impl Send for RingSink {}
unsafe impl Sync for RingSink {}

impl RingSink {
    /// Creates a ring holding up to `capacity` events (rounded up to a
    /// power of two, minimum 64).
    pub fn with_capacity(capacity: usize) -> RingSink {
        let cap = capacity.max(64).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ev: std::cell::UnsafeCell::new(TraceEvent {
                    cycle: 0,
                    thread: 0,
                    kind: EventKind::UopRetired { id: 0 },
                }),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RingSink {
            mask: cap - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    /// Number of events ever emitted into this ring.
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Number of events that have been overwritten (lost to wrap-around).
    pub fn overwritten(&self) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        head.saturating_sub(self.slots.len() as u64) + self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the most recent events, oldest first.
    ///
    /// Call after the producer has quiesced; concurrent writes cause the
    /// affected slots to be skipped, never returned torn.
    pub fn drain_recent(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for pos in start..head {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before != pos + 1 {
                continue; // Overwritten by a newer event, or mid-write.
            }
            // SAFETY: payload is Copy POD; a torn copy is discarded below
            // when the sequence check fails.
            let ev = unsafe { *slot.ev.get() };
            if slot.seq.load(Ordering::Acquire) == pos + 1 {
                out.push(ev);
            }
        }
        out
    }
}

impl TraceSink for RingSink {
    #[inline]
    fn emit(&self, ev: TraceEvent) {
        let pos = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(pos & self.mask) as usize];
        slot.seq.store(0, Ordering::Release);
        // SAFETY: we own this slot for the duration between the two seq
        // stores; a concurrent writer that laps us will restamp seq itself,
        // and readers reject slots whose seq doesn't match the expected
        // position.
        unsafe {
            *slot.ev.get() = ev;
        }
        slot.seq.store(pos + 1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------------

/// An unbounded in-memory sink. This is the per-run recorder used when a
/// caller asks for full traces; it trades a mutex per event for losslessness.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Takes all recorded events, leaving the sink empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink poisoned"))
    }

    /// Copies all recorded events without clearing.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    #[inline]
    fn emit(&self, ev: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(ev);
    }
}

// ---------------------------------------------------------------------------
// FanoutSink
// ---------------------------------------------------------------------------

/// Tees one event stream into several sinks.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink + Send + Sync>>,
}

impl FanoutSink {
    /// Builds a fanout over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn TraceSink + Send + Sync>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    #[inline]
    fn emit(&self, ev: TraceEvent) {
        for s in &self.sinks {
            s.emit(ev);
        }
    }
}

// ---------------------------------------------------------------------------
// SinkHandle
// ---------------------------------------------------------------------------

struct SinkCore {
    sink: Arc<dyn TraceSink + Send + Sync>,
    /// Current simulated cycle, shared between the core (which advances it)
    /// and passive emitters like the memory hierarchy (which only read it).
    clock: AtomicU64,
}

/// The cheap, cloneable handle the simulator emits through.
///
/// A disabled handle (`SinkHandle::disabled()`, also `Default`) is a `None`
/// plus a byte; every emit path starts with one branch on that `Option` and
/// does nothing else. Payload construction happens at the call site, but
/// since [`EventKind`] is built from values already in registers the
/// optimizer drops it on the disabled path.
///
/// The handle also carries the *trace clock*: the core calls
/// [`SinkHandle::tick`] once per cycle, and components that have no cycle
/// counter of their own (caches, TLBs) timestamp their events from the
/// shared clock.
#[derive(Clone, Default)]
pub struct SinkHandle {
    core: Option<Arc<SinkCore>>,
    thread: u8,
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.core.is_some())
            .field("thread", &self.thread)
            .finish()
    }
}

impl SinkHandle {
    /// A handle that drops everything at the cost of one branch.
    #[inline]
    pub fn disabled() -> SinkHandle {
        SinkHandle::default()
    }

    /// A handle feeding `sink`, timestamping from a fresh shared clock.
    pub fn attached(sink: Arc<dyn TraceSink + Send + Sync>) -> SinkHandle {
        SinkHandle {
            core: Some(Arc::new(SinkCore {
                sink,
                clock: AtomicU64::new(0),
            })),
            thread: 0,
        }
    }

    /// A sibling handle sharing this one's sink and clock but tagging
    /// events with a different hardware-thread id.
    pub fn for_thread(&self, thread: u8) -> SinkHandle {
        SinkHandle {
            core: self.core.clone(),
            thread,
        }
    }

    /// Whether events will actually be recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The underlying sink, if attached — used to compose a user-supplied
    /// sink with an internal recorder via [`FanoutSink`].
    pub fn sink_arc(&self) -> Option<Arc<dyn TraceSink + Send + Sync>> {
        self.core.as_ref().map(|c| c.sink.clone())
    }

    /// Advances the shared trace clock. Called by the core once per cycle.
    #[inline]
    pub fn tick(&self, cycle: u64) {
        if let Some(core) = &self.core {
            core.clock.store(cycle, Ordering::Relaxed);
        }
    }

    /// Current value of the shared trace clock.
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.core {
            Some(core) => core.clock.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Emits an event stamped with the shared clock's current cycle.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(core) = &self.core {
            core.sink.emit(TraceEvent {
                cycle: core.clock.load(Ordering::Relaxed),
                thread: self.thread,
                kind,
            });
        }
    }

    /// Emits an event with an explicit cycle stamp (for retro-dated events
    /// such as a squash recorded at resolution time).
    #[inline]
    pub fn emit_at(&self, cycle: u64, kind: EventKind) {
        if let Some(core) = &self.core {
            core.sink.emit(TraceEvent {
                cycle,
                thread: self.thread,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> EventKind {
        EventKind::UopRetired { id }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = SinkHandle::disabled();
        assert!(!h.enabled());
        h.tick(10);
        h.emit(ev(1));
        h.emit_at(5, ev(2));
        assert_eq!(h.now(), 0);
    }

    #[test]
    fn memory_sink_records_in_order_with_clock() {
        let sink = Arc::new(MemorySink::new());
        let h = SinkHandle::attached(sink.clone());
        h.tick(3);
        h.emit(ev(1));
        h.tick(7);
        h.emit(ev(2));
        h.emit_at(5, ev(3));
        let evs = sink.drain();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].cycle, 3);
        assert_eq!(evs[1].cycle, 7);
        assert_eq!(evs[2].cycle, 5);
        assert!(sink.is_empty());
    }

    #[test]
    fn sibling_handles_share_clock_but_tag_threads() {
        let sink = Arc::new(MemorySink::new());
        let t0 = SinkHandle::attached(sink.clone());
        let t1 = t0.for_thread(1);
        t0.tick(42);
        t1.emit(ev(1));
        let evs = sink.drain();
        assert_eq!(evs[0].cycle, 42, "clock is shared");
        assert_eq!(evs[0].thread, 1, "thread tag differs");
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let ring = RingSink::with_capacity(64);
        for i in 0..200u64 {
            ring.emit(TraceEvent {
                cycle: i,
                thread: 0,
                kind: ev(i),
            });
        }
        let evs = ring.drain_recent();
        assert_eq!(evs.len(), 64);
        assert_eq!(evs.first().map(|e| e.cycle), Some(136));
        assert_eq!(evs.last().map(|e| e.cycle), Some(199));
        assert_eq!(ring.emitted(), 200);
        assert_eq!(ring.overwritten(), 136);
    }

    #[test]
    fn ring_survives_concurrent_writers() {
        let ring = Arc::new(RingSink::with_capacity(256));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let r = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    r.emit(TraceEvent {
                        cycle: i,
                        thread: t,
                        kind: ev(i),
                    });
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(ring.emitted(), 4000);
        let evs = ring.drain_recent();
        assert!(evs.len() <= 256);
        assert!(!evs.is_empty());
    }

    #[test]
    fn fanout_tees_to_all_sinks() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        let h = SinkHandle::attached(Arc::new(fan));
        h.emit(ev(9));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
