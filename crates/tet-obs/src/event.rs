//! The structured trace-event vocabulary.
//!
//! Every layer of the simulator (frontend, out-of-order core, SMT arbiter,
//! memory hierarchy, TLBs, fill buffers) reports what it does by emitting
//! [`TraceEvent`]s through a [`crate::sink::SinkHandle`]. Events are small,
//! `Copy`, and carry only primitive payloads so emission is cheap and the
//! crate depends on nothing else in the workspace — the producing crates
//! convert their own enums into the neutral ones defined here.

/// Why a window of in-flight µops was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SquashCause {
    /// A branch resolved against its prediction.
    BranchMispredict,
    /// An architectural fault reached the head of the ROB.
    Fault,
    /// A transactional region aborted (TSX-style suppression).
    TxnAbort,
}

impl SquashCause {
    /// Stable lower-snake label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            SquashCause::BranchMispredict => "branch_mispredict",
            SquashCause::Fault => "fault",
            SquashCause::TxnAbort => "txn_abort",
        }
    }
}

/// The architectural class of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Supervisor-only / permission violation (the Meltdown precondition).
    Permission,
    /// Page not present.
    NotPresent,
    /// Reserved bit set in a PTE.
    ReservedBit,
}

impl FaultClass {
    /// Stable lower-snake label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            FaultClass::Permission => "permission",
            FaultClass::NotPresent => "not_present",
            FaultClass::ReservedBit => "reserved_bit",
        }
    }
}

/// How a raised fault is delivered to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryRoute {
    /// Architectural exception entry (serializing — the TET signal source).
    Exception,
    /// Machine clear with in-place suppression.
    MachineClear,
    /// Transactional abort rollback.
    TxnAbort,
}

impl DeliveryRoute {
    /// Stable lower-snake label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            DeliveryRoute::Exception => "exception",
            DeliveryRoute::MachineClear => "machine_clear",
            DeliveryRoute::TxnAbort => "txn_abort",
        }
    }
}

/// Which level of the memory hierarchy satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// First-level cache (data or instruction side, per the `fetch` flag).
    L1,
    /// Unified second-level cache.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

impl MemLevel {
    /// Stable lower-snake label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            MemLevel::L1 => "l1",
            MemLevel::L2 => "l2",
            MemLevel::Llc => "llc",
            MemLevel::Dram => "dram",
        }
    }
}

/// Which TLB structure an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbKind {
    /// Data-side TLB.
    Data,
    /// Instruction-side TLB.
    Inst,
}

impl TlbKind {
    /// Stable lower-snake label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            TlbKind::Data => "dtlb",
            TlbKind::Inst => "itlb",
        }
    }
}

/// What happened. All payloads are primitives so the event stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    // ---- µop lifecycle -------------------------------------------------
    /// A µop entered the ROB (rename/allocate).
    UopRenamed {
        /// Monotonic µop id (unique within a run).
        id: u64,
        /// Program counter of the parent instruction.
        pc: u64,
        /// Static mnemonic of the parent instruction.
        op: &'static str,
    },
    /// A µop was picked by the scheduler and executed.
    UopExecuted {
        /// µop id.
        id: u64,
        /// Cycle the µop started executing.
        started_at: u64,
        /// Cycle its result becomes architecturally visible.
        done_at: u64,
    },
    /// A µop retired from the head of the ROB.
    UopRetired {
        /// µop id.
        id: u64,
    },
    /// A µop was squashed before retirement.
    UopSquashed {
        /// µop id.
        id: u64,
        /// Why the squash happened.
        cause: SquashCause,
    },

    // ---- frontend ------------------------------------------------------
    /// One cycle of frontend delivery accounting.
    FrontendCycle {
        /// µops delivered from the DSB (µop cache) this cycle.
        dsb_uops: u32,
        /// µops delivered from the legacy decode (MITE) path this cycle.
        mite_uops: u32,
        /// Whether the frontend was stalled this cycle.
        stalled: bool,
    },
    /// The BPU produced a prediction for a branch.
    BranchPredicted {
        /// Branch PC.
        pc: u64,
        /// Predicted direction.
        taken: bool,
    },
    /// A branch resolved in the backend.
    BranchResolved {
        /// Branch PC.
        pc: u64,
        /// Whether the earlier prediction was wrong.
        mispredicted: bool,
    },
    /// The frontend was re-steered after a mispredict.
    Resteer {
        /// Corrected fetch target.
        target_pc: u64,
        /// Number of wrong-path µops flushed.
        flushed_uops: u32,
    },

    // ---- faults and interrupts ----------------------------------------
    /// A fault was raised speculatively (not yet at ROB head).
    FaultRaised {
        /// Faulting instruction PC.
        pc: u64,
        /// Faulting virtual address.
        vaddr: u64,
        /// Fault class.
        class: FaultClass,
    },
    /// A fault reached the ROB head and was delivered.
    FaultDelivered {
        /// Faulting instruction PC.
        pc: u64,
        /// Fault class.
        class: FaultClass,
        /// How it was delivered / suppressed.
        route: DeliveryRoute,
        /// Squashed-µop count at delivery (occupancy-proportional cost).
        squashed_uops: u32,
    },
    /// A timer interrupt stole the pipeline.
    TimerInterrupt {
        /// Cycle the pipeline resumes.
        until: u64,
    },

    // ---- memory hierarchy ----------------------------------------------
    /// A cache access completed somewhere in the hierarchy.
    CacheAccess {
        /// Physical address.
        pa: u64,
        /// Level that satisfied the access.
        level: MemLevel,
        /// End-to-end latency in cycles.
        latency: u64,
        /// `true` for instruction fetch, `false` for data.
        fetch: bool,
    },
    /// A line was flushed (clflush-style) from the whole hierarchy.
    CacheFlush {
        /// Physical address.
        pa: u64,
    },
    /// A line fill buffer entry recorded a fill.
    LfbFill {
        /// Physical address of the filled line.
        pa: u64,
    },

    // ---- TLB / paging --------------------------------------------------
    /// A TLB lookup.
    TlbLookup {
        /// Which TLB.
        kind: TlbKind,
        /// Virtual address looked up.
        vaddr: u64,
        /// Whether it hit.
        hit: bool,
    },
    /// A translation was installed into a TLB.
    TlbFill {
        /// Which TLB.
        kind: TlbKind,
        /// Virtual address installed.
        vaddr: u64,
    },
    /// A TLB was flushed (context switch / KPTI transition).
    TlbFlush {
        /// Which TLB.
        kind: TlbKind,
        /// Whether global entries were kept.
        kept_global: bool,
    },
    /// A hardware page walk completed.
    PageWalk {
        /// Virtual address walked.
        vaddr: u64,
        /// Walk latency in cycles.
        cycles: u64,
        /// Whether a mapping was found.
        mapped: bool,
    },

    // ---- SMT -----------------------------------------------------------
    /// A thread was stalled by its sibling (port / fetch contention).
    SmtContention {
        /// Cycle the stalled thread resumes.
        until: u64,
    },
}

impl EventKind {
    /// Stable lower-snake label naming the event type in exports.
    pub const fn label(self) -> &'static str {
        match self {
            EventKind::UopRenamed { .. } => "uop_renamed",
            EventKind::UopExecuted { .. } => "uop_executed",
            EventKind::UopRetired { .. } => "uop_retired",
            EventKind::UopSquashed { .. } => "uop_squashed",
            EventKind::FrontendCycle { .. } => "frontend_cycle",
            EventKind::BranchPredicted { .. } => "branch_predicted",
            EventKind::BranchResolved { .. } => "branch_resolved",
            EventKind::Resteer { .. } => "resteer",
            EventKind::FaultRaised { .. } => "fault_raised",
            EventKind::FaultDelivered { .. } => "fault_delivered",
            EventKind::TimerInterrupt { .. } => "timer_interrupt",
            EventKind::CacheAccess { .. } => "cache_access",
            EventKind::CacheFlush { .. } => "cache_flush",
            EventKind::LfbFill { .. } => "lfb_fill",
            EventKind::TlbLookup { .. } => "tlb_lookup",
            EventKind::TlbFill { .. } => "tlb_fill",
            EventKind::TlbFlush { .. } => "tlb_flush",
            EventKind::PageWalk { .. } => "page_walk",
            EventKind::SmtContention { .. } => "smt_contention",
        }
    }
}

/// One timestamped observation from the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated cycle the event happened at.
    pub cycle: u64,
    /// Hardware thread (SMT context) that produced the event.
    pub thread: u8,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // Emission cost matters: the event must stay register-friendly.
        assert!(std::mem::size_of::<TraceEvent>() <= 64);
        let ev = TraceEvent {
            cycle: 1,
            thread: 0,
            kind: EventKind::UopRetired { id: 7 },
        };
        let copy = ev; // Copy, not move.
        assert_eq!(ev, copy);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SquashCause::Fault.label(), "fault");
        assert_eq!(MemLevel::Llc.label(), "llc");
        assert_eq!(EventKind::LfbFill { pa: 0 }.label(), "lfb_fill");
    }
}
