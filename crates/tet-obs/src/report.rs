//! Run reports: the metrics layer attached to every simulator run.
//!
//! A [`RunReport`] is a named bag of metadata strings, scalar metrics,
//! integer counters, per-stage cycle accounting, and latency histograms
//! with percentile summaries. It serializes to deterministic JSON (keys are
//! `BTreeMap`-sorted) via the crate's own [`crate::json`] layer and parses
//! back for round-trip tests.
//!
//! Every `whisper-bench` binary writes one of these to
//! `target/reports/<bin>.json` so experiment results are machine-readable
//! as well as human-readable.

use std::collections::BTreeMap;

use crate::json::{self, Value};

/// Schema version stamped into every report.
///
/// v2 adds optional throughput/host fields on top of v1
/// ([`RunReport::wall_time_ms`], [`RunReport::host_threads`],
/// [`RunReport::sim_cycles_per_sec`],
/// [`RunReport::host_available_parallelism`]); v3 adds the optional
/// host-side [`RunReport::metrics`] section. Every earlier field is
/// unchanged and v1/v2 documents still parse.
pub const REPORT_SCHEMA_VERSION: u64 = 3;

/// Oldest schema version [`RunReport::from_json`] accepts.
pub const REPORT_SCHEMA_MIN_VERSION: u64 = 1;

/// Sub-bucket precision of [`Histogram`]: values below
/// `1 << HIST_PRECISION_BITS` are recorded exactly; larger values land in
/// log buckets whose relative width is `2^-HIST_PRECISION_BITS` (0.78%),
/// so every reported percentile is within 1% of the exact nearest-rank
/// answer.
pub const HIST_PRECISION_BITS: u32 = 7;

const HIST_SUB_BUCKETS: usize = 1 << HIST_PRECISION_BITS;
/// Log groups: group 0 is the exact sub-`2^P` range; groups `1..` cover
/// one power-of-two exponent each up to the full `u64` range.
const HIST_GROUPS: usize = 64 - HIST_PRECISION_BITS as usize + 1;
/// Total fixed bucket count (7424 for 7 precision bits).
const HIST_BUCKETS: usize = HIST_GROUPS * HIST_SUB_BUCKETS;

/// An accumulating latency/value histogram over fixed log-spaced buckets
/// (HDR-histogram style).
///
/// Memory is bounded regardless of sample count: `record` is O(1) into a
/// flat bucket array (~58 KiB, allocated on first use) plus exact
/// count/sum/min/max registers. Values below `2^7 = 128` are exact;
/// larger values are quantized to within 0.78% — summaries therefore
/// report percentiles within 1% of the raw-sample answer, while `count`,
/// `min`, `max` and `mean` stay exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Lazily allocated to `HIST_BUCKETS` on first record, so an empty
    /// histogram costs nothing.
    buckets: Vec<u64>,
}

/// Bucket index of a value (exact below `2^P`, log-spaced above).
#[inline]
fn hist_index(v: u64) -> usize {
    let p = HIST_PRECISION_BITS;
    if v < HIST_SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let group = (e - p + 1) as usize;
        let sub = ((v >> (e - p)) & (HIST_SUB_BUCKETS as u64 - 1)) as usize;
        (group << p) + sub
    }
}

/// The smallest value that maps to bucket `i` — the reported
/// representative, so quantization only ever rounds *down* (by less than
/// one part in `2^P`).
#[inline]
fn hist_bucket_low(i: usize) -> u64 {
    let p = HIST_PRECISION_BITS;
    let group = i >> p;
    let sub = (i & (HIST_SUB_BUCKETS - 1)) as u64;
    if group == 0 {
        sub
    } else {
        (HIST_SUB_BUCKETS as u64 + sub) << (group - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample. O(1), never grows beyond the fixed bucket
    /// array.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
            self.min = u64::MAX;
        }
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[hist_index(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Merges another histogram's samples into this one (used when
    /// combining per-worker metric shards).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
            self.min = u64::MAX;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Collapses the buckets into a percentile summary. An empty
    /// histogram summarizes to all-zero (never NaN — the mean is defined
    /// as 0.0 when there are no samples).
    pub fn summarize(&self) -> HistogramSummary {
        if self.count == 0 {
            return HistogramSummary::default();
        }
        // Nearest-rank percentile over the cumulative bucket counts; the
        // representative is the bucket's low edge clamped into the exact
        // [min, max] envelope.
        let pct = |p: f64| -> u64 {
            let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
            let rank = rank.clamp(1, self.count);
            let mut seen = 0u64;
            for (i, &n) in self.buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return hist_bucket_low(i).clamp(self.min, self.max);
                }
            }
            self.max
        };
        HistogramSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.sum as f64 / self.count as f64,
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
            p999: pct(99.9),
        }
    }
}

/// The serialized form of a histogram: count, extrema, mean, percentiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// 99.9th percentile (nearest rank) — the tail the serve-layer
    /// latency SLOs watch.
    pub p999: u64,
}

impl HistogramSummary {
    fn to_value(&self) -> Value {
        let mut o = Value::obj();
        o.set("count", Value::from(self.count));
        o.set("min", Value::from(self.min));
        o.set("max", Value::from(self.max));
        o.set("mean", Value::Num(self.mean));
        o.set("p50", Value::from(self.p50));
        o.set("p90", Value::from(self.p90));
        o.set("p99", Value::from(self.p99));
        o.set("p999", Value::from(self.p999));
        o
    }

    fn from_value(v: &Value) -> Result<HistogramSummary, String> {
        let num = |k: &str| -> Result<u64, String> { field(v, k)?.as_u64().ok_or(bad(k)) };
        let p99 = num("p99")?;
        Ok(HistogramSummary {
            count: num("count")?,
            min: num("min")?,
            max: num("max")?,
            mean: field(v, "mean")?.as_num().ok_or(bad("mean"))?,
            p50: num("p50")?,
            p90: num("p90")?,
            p99,
            // Documents written before p999 existed (the committed
            // BENCH_* lineage) parse with the best stand-in available.
            p999: v.get("p999").and_then(|x| x.as_u64()).unwrap_or(p99),
        })
    }
}

fn field<'v>(v: &'v Value, k: &str) -> Result<&'v Value, String> {
    v.get(k).ok_or_else(|| format!("missing field {k:?}"))
}

fn bad(k: &str) -> String {
    format!("field {k:?} has the wrong type")
}

/// Host-side metrics attached to a report (schema v3).
///
/// Everything in here measures the *host* — wall-nanosecond profiles,
/// registry counters, flight-recorder gauges — and is therefore excluded
/// from determinism comparisons alongside the v2 timing fields (see
/// [`RunReport::without_timing`]). The simulated result fields of the
/// report never depend on this section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSection {
    /// Monotonic counters (events, samples, bytes).
    pub counters: BTreeMap<String, u64>,
    /// Last-written point-in-time values.
    pub gauges: BTreeMap<String, f64>,
    /// Distribution summaries (host nanoseconds, batch sizes, ...).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSection {
    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    fn to_value(&self) -> Value {
        let mut o = Value::obj();
        o.set(
            "counters",
            Value::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        o.set(
            "gauges",
            Value::Obj(
                self.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        );
        o.set(
            "histograms",
            Value::Obj(
                self.histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        );
        o
    }

    fn from_value(v: &Value) -> Result<MetricsSection, String> {
        let pairs = |key: &str| -> Result<Vec<(String, Value)>, String> {
            match field(v, key)? {
                Value::Obj(pairs) => Ok(pairs.clone()),
                _ => Err(bad(key)),
            }
        };
        let mut m = MetricsSection::default();
        for (k, val) in pairs("counters")? {
            m.counters.insert(k.clone(), val.as_u64().ok_or(bad(&k))?);
        }
        for (k, val) in pairs("gauges")? {
            m.gauges.insert(k.clone(), val.as_num().ok_or(bad(&k))?);
        }
        for (k, val) in pairs("histograms")? {
            m.histograms.insert(k, HistogramSummary::from_value(&val)?);
        }
        Ok(m)
    }
}

/// Machine-readable summary of one simulator run or experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Report name — usually the binary or experiment id (`fig1_tote`).
    pub name: String,
    /// Free-form string metadata (CPU preset, scenario, commit, ...).
    pub meta: BTreeMap<String, String>,
    /// Floating-point metrics (accuracies, ratios, means).
    pub scalars: BTreeMap<String, f64>,
    /// Integer counters (PMU events, event counts).
    pub counters: BTreeMap<String, u64>,
    /// Per-pipeline-stage cycle accounting.
    pub stages: BTreeMap<String, u64>,
    /// Named latency/value distributions.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Wall-clock duration of the run in milliseconds (schema v2;
    /// intentionally excluded from determinism comparisons — see
    /// [`RunReport::without_timing`]).
    pub wall_time_ms: Option<f64>,
    /// Host worker threads the run used (schema v2).
    pub host_threads: Option<u64>,
    /// Simulated cycles per wall-clock second (schema v2).
    pub sim_cycles_per_sec: Option<f64>,
    /// `std::thread::available_parallelism` of the host that produced the
    /// report (schema v2). Written as a JSON number; older reports that
    /// stored it as a `meta` string still parse (see
    /// [`RunReport::from_json`]).
    pub host_available_parallelism: Option<u64>,
    /// Host-side metrics registry snapshot (schema v3). Like the v2
    /// timing fields, cleared by [`RunReport::without_timing`].
    pub metrics: Option<MetricsSection>,
}

impl RunReport {
    /// Creates an empty report with the given name.
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            ..RunReport::default()
        }
    }

    /// Sets a metadata string.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.meta.insert(key.to_string(), value.into());
        self
    }

    /// Sets a scalar metric.
    pub fn scalar(&mut self, key: &str, value: f64) -> &mut Self {
        self.scalars.insert(key.to_string(), value);
        self
    }

    /// Sets a counter.
    pub fn counter(&mut self, key: &str, value: u64) -> &mut Self {
        self.counters.insert(key.to_string(), value);
        self
    }

    /// Adds to a counter (creating it at zero).
    pub fn add_counter(&mut self, key: &str, delta: u64) -> &mut Self {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
        self
    }

    /// Sets a per-stage cycle total.
    pub fn stage(&mut self, key: &str, cycles: u64) -> &mut Self {
        self.stages.insert(key.to_string(), cycles);
        self
    }

    /// Attaches a histogram's summary.
    pub fn histogram(&mut self, key: &str, hist: &Histogram) -> &mut Self {
        self.histograms.insert(key.to_string(), hist.summarize());
        self
    }

    /// Records the schema-v2 throughput fields in one call: wall time,
    /// host thread count, and — when `sim_cycles` is known — the derived
    /// simulated-cycles-per-second rate.
    pub fn set_throughput(
        &mut self,
        wall: std::time::Duration,
        host_threads: usize,
        sim_cycles: Option<u64>,
    ) -> &mut Self {
        let secs = wall.as_secs_f64();
        self.wall_time_ms = Some(secs * 1e3);
        self.host_threads = Some(host_threads as u64);
        self.sim_cycles_per_sec = sim_cycles.filter(|_| secs > 0.0).map(|c| c as f64 / secs);
        self
    }

    /// Returns a copy with the host-timing-dependent v2 fields cleared.
    ///
    /// Determinism checks compare `a.without_timing() == b.without_timing()`:
    /// everything the simulation computes must match bit-for-bit across
    /// thread counts, while wall time and throughput legitimately vary.
    pub fn without_timing(&self) -> RunReport {
        RunReport {
            wall_time_ms: None,
            host_threads: None,
            sim_cycles_per_sec: None,
            host_available_parallelism: None,
            metrics: None,
            ..self.clone()
        }
    }

    /// Attaches the host-side metrics section (schema v3). An empty
    /// section is normalized to `None` so metrics-off runs serialize
    /// identically to pre-v3 reports.
    pub fn set_metrics(&mut self, metrics: MetricsSection) -> &mut Self {
        self.metrics = (!metrics.is_empty()).then_some(metrics);
        self
    }

    /// Serializes to the JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = Value::obj();
        o.set("schema_version", Value::from(REPORT_SCHEMA_VERSION));
        o.set("name", Value::from(self.name.as_str()));
        let map_obj = |pairs: Vec<(String, Value)>| Value::Obj(pairs);
        o.set(
            "meta",
            map_obj(
                self.meta
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
                    .collect(),
            ),
        );
        o.set(
            "scalars",
            map_obj(
                self.scalars
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        );
        o.set(
            "counters",
            map_obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        o.set(
            "stages",
            map_obj(
                self.stages
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        o.set(
            "histograms",
            map_obj(
                self.histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        );
        if let Some(ms) = self.wall_time_ms {
            o.set("wall_time_ms", Value::Num(ms));
        }
        if let Some(ht) = self.host_threads {
            o.set("host_threads", Value::from(ht));
        }
        if let Some(rate) = self.sim_cycles_per_sec {
            o.set("sim_cycles_per_sec", Value::Num(rate));
        }
        if let Some(hap) = self.host_available_parallelism {
            o.set("host_available_parallelism", Value::from(hap));
        }
        if let Some(m) = &self.metrics {
            o.set("metrics", m.to_value());
        }
        o
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON (inverse of [`RunReport::to_json`]).
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v = json::parse(text)?;
        let version = field(&v, "schema_version")?
            .as_u64()
            .ok_or(bad("schema_version"))?;
        if !(REPORT_SCHEMA_MIN_VERSION..=REPORT_SCHEMA_VERSION).contains(&version) {
            return Err(format!("unsupported schema_version {version}"));
        }
        let name = field(&v, "name")?.as_str().ok_or(bad("name"))?.to_string();
        let obj_pairs = |key: &str| -> Result<Vec<(String, Value)>, String> {
            match field(&v, key)? {
                Value::Obj(pairs) => Ok(pairs.clone()),
                _ => Err(bad(key)),
            }
        };
        let mut report = RunReport::new(&name);
        for (k, val) in obj_pairs("meta")? {
            report
                .meta
                .insert(k.clone(), val.as_str().ok_or(bad(&k))?.to_string());
        }
        for (k, val) in obj_pairs("scalars")? {
            report
                .scalars
                .insert(k.clone(), val.as_num().ok_or(bad(&k))?);
        }
        for (k, val) in obj_pairs("counters")? {
            report
                .counters
                .insert(k.clone(), val.as_u64().ok_or(bad(&k))?);
        }
        for (k, val) in obj_pairs("stages")? {
            report
                .stages
                .insert(k.clone(), val.as_u64().ok_or(bad(&k))?);
        }
        for (k, val) in obj_pairs("histograms")? {
            report
                .histograms
                .insert(k, HistogramSummary::from_value(&val)?);
        }
        // v2 throughput fields: optional in v2, absent in v1.
        if let Some(val) = v.get("wall_time_ms") {
            report.wall_time_ms = Some(val.as_num().ok_or(bad("wall_time_ms"))?);
        }
        if let Some(val) = v.get("host_threads") {
            report.host_threads = Some(val.as_u64().ok_or(bad("host_threads"))?);
        }
        if let Some(val) = v.get("sim_cycles_per_sec") {
            report.sim_cycles_per_sec = Some(val.as_num().ok_or(bad("sim_cycles_per_sec"))?);
        }
        if let Some(val) = v.get("host_available_parallelism") {
            report.host_available_parallelism =
                Some(val.as_u64().ok_or(bad("host_available_parallelism"))?);
        } else if let Some(s) = report.meta.get("host_available_parallelism") {
            // Legacy reports carried the value as a meta string.
            report.host_available_parallelism = s.parse().ok();
        }
        // v3 metrics section: optional in v3, absent in v1/v2.
        if let Some(val) = v.get("metrics") {
            report.metrics = Some(MetricsSection::from_value(val)?);
        }
        Ok(report)
    }

    /// Writes the report to `target/reports/<name>.json`, creating the
    /// directory if needed. Returns the path written.
    ///
    /// The directory can be overridden with the `TET_REPORT_DIR`
    /// environment variable (used by `scripts/repro_all.sh --json`).
    pub fn write_default(&self) -> std::io::Result<std::path::PathBuf> {
        // Errors carry the offending path: callers surface them as
        // one-line diagnostics (a server answering live requests must
        // be able to say *which* directory was unwritable).
        let dir = std::env::var_os("TET_REPORT_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target/reports"));
        std::fs::create_dir_all(&dir).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("create report dir {}: {e}", dir.display()),
            )
        })?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())
            .map_err(|e| std::io::Error::new(e.kind(), format!("write {}: {e}", path.display())))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.p999, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summaries_without_p999_parse_with_the_p99_stand_in() {
        // BENCH_* lineage files predate the p999 field; they must keep
        // parsing for `bench_trend --gate`.
        let legacy = "{\"count\": 4, \"min\": 1, \"max\": 9, \"mean\": 4.0, \
                      \"p50\": 3, \"p90\": 8, \"p99\": 9}";
        let s = HistogramSummary::from_value(&crate::json::parse(legacy).unwrap()).unwrap();
        assert_eq!(s.p99, 9);
        assert_eq!(s.p999, 9, "absent p999 falls back to p99");
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = Histogram::new().summarize();
        assert_eq!(s, HistogramSummary::default());
        // Regression: the empty mean must be 0.0, never NaN (0/0).
        assert_eq!(s.mean, 0.0);
        assert!(!s.mean.is_nan());
        // ...and it must serialize/round-trip cleanly.
        let mut r = RunReport::new("empty");
        r.histogram("h", &Histogram::new());
        let back = RunReport::from_json(&r.to_json()).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn histogram_percentiles_within_one_percent_of_exact() {
        // Large values exercise the log-bucketed path; every percentile
        // must stay within 1% of the exact nearest-rank answer.
        let mut h = Histogram::new();
        let mut raw: Vec<u64> = Vec::new();
        let mut x = 7u64;
        for i in 0..10_000u64 {
            // Deterministic spread over ~6 decades.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            let v = 100 + (x % 1_000_000_000);
            raw.push(v);
            h.record(v);
        }
        raw.sort_unstable();
        let exact = |p: f64| -> u64 {
            let rank = ((p / 100.0) * raw.len() as f64).ceil() as usize;
            raw[rank.clamp(1, raw.len()) - 1]
        };
        let s = h.summarize();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, raw[0]);
        assert_eq!(s.max, *raw.last().unwrap());
        for (got, want) in [
            (s.p50, exact(50.0)),
            (s.p90, exact(90.0)),
            (s.p99, exact(99.0)),
            (s.p999, exact(99.9)),
        ] {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err <= 0.01, "got {got}, exact {want}, err {err}");
        }
        let exact_mean = raw.iter().map(|&v| v as f64).sum::<f64>() / raw.len() as f64;
        assert!((s.mean - exact_mean).abs() < 1e-6, "mean is exact");
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [3u64, 900, 12_345, 1 << 40] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 77, 1 << 50] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, combined);
        // Merging an empty histogram is a no-op both ways.
        merged.merge(&Histogram::new());
        assert_eq!(merged, combined);
        let mut from_empty = Histogram::new();
        from_empty.merge(&combined);
        assert_eq!(from_empty.summarize(), combined.summarize());
    }

    #[test]
    fn histogram_extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.summarize();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // p99 representative is clamped into [min, max].
        assert!(s.p99 >= s.p50 && s.p99 <= s.max);
        let err = (u64::MAX as f64 - s.p99 as f64) / u64::MAX as f64;
        assert!(err <= 0.01, "p99 within 1% of max, err {err}");
    }

    #[test]
    fn metrics_section_round_trips_and_is_cleared_by_without_timing() {
        let mut m = MetricsSection::default();
        m.counters.insert("prof.samples".into(), 4096);
        m.gauges.insert("flight.trials_per_sec".into(), 123.5);
        let mut h = Histogram::new();
        h.record(250);
        h.record(990);
        m.histograms.insert("step_ns".into(), h.summarize());
        let mut r = RunReport::new("bench");
        r.set_metrics(m.clone());
        assert_eq!(r.metrics.as_ref(), Some(&m));
        let back = RunReport::from_json(&r.to_json()).expect("round-trips");
        assert_eq!(back, r);
        // Host-side metrics are timing: determinism comparisons drop them.
        assert_eq!(back.without_timing().metrics, None);
        // Empty sections normalize to None so metrics-off reports are
        // byte-identical to pre-v3 ones.
        let mut off = RunReport::new("bench");
        off.set_metrics(MetricsSection::default());
        assert_eq!(off.metrics, None);
        assert!(!off.to_json().contains("\"metrics\""));
    }

    #[test]
    fn v2_documents_without_metrics_still_parse() {
        let mut v = RunReport::new("older").to_value();
        v.set("schema_version", Value::from(2u64));
        let r = RunReport::from_json(&v.to_json()).expect("v2 parses");
        assert_eq!(r.name, "older");
        assert_eq!(r.metrics, None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut h = Histogram::new();
        for v in [12u64, 44, 44, 300] {
            h.record(v);
        }
        let mut r = RunReport::new("fig1_tote");
        r.set_meta("cpu", "intel-i7");
        r.set_meta("scenario", "meltdown");
        r.scalar("accuracy", 0.96875);
        r.counter("runs", 256);
        r.counter("int_misc.recovery_cycles", 4096);
        r.stage("frontend_stall", 120);
        r.stage("exec", 800);
        r.histogram("tote_cycles", &h);
        let text = r.to_json();
        let back = RunReport::from_json(&text).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let mut r = RunReport::new("x").to_value();
        r.set("schema_version", Value::from(99u64));
        assert!(RunReport::from_json(&r.to_json()).is_err());
    }

    #[test]
    fn v2_throughput_fields_round_trip() {
        let mut r = RunReport::new("bench");
        r.set_throughput(std::time::Duration::from_millis(2500), 8, Some(5_000_000));
        assert_eq!(r.wall_time_ms, Some(2500.0));
        assert_eq!(r.host_threads, Some(8));
        assert_eq!(r.sim_cycles_per_sec, Some(2_000_000.0));
        let back = RunReport::from_json(&r.to_json()).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 report has no throughput fields and schema_version 1.
        let mut v = RunReport::new("legacy").to_value();
        v.set("schema_version", Value::from(1u64));
        let r = RunReport::from_json(&v.to_json()).expect("v1 parses");
        assert_eq!(r.name, "legacy");
        assert_eq!(r.wall_time_ms, None);
        assert_eq!(r.host_threads, None);
        assert_eq!(r.sim_cycles_per_sec, None);
    }

    #[test]
    fn host_available_parallelism_round_trips_as_number() {
        let mut r = RunReport::new("bench");
        r.host_available_parallelism = Some(16);
        let text = r.to_json();
        assert!(
            text.contains("\"host_available_parallelism\": 16"),
            "must serialize as a JSON number, got: {text}"
        );
        let back = RunReport::from_json(&text).expect("round-trips");
        assert_eq!(back.host_available_parallelism, Some(16));
    }

    #[test]
    fn host_available_parallelism_accepts_legacy_meta_string() {
        let mut r = RunReport::new("legacy");
        r.set_meta("host_available_parallelism", "4");
        let back = RunReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.host_available_parallelism, Some(4));
        // The numeric field wins when both are present.
        let mut v = back.to_value();
        v.set("host_available_parallelism", Value::from(32u64));
        let both = RunReport::from_json(&v.to_json()).expect("parses");
        assert_eq!(both.host_available_parallelism, Some(32));
    }

    #[test]
    fn without_timing_masks_only_the_v2_fields() {
        let mut a = RunReport::new("run");
        a.scalar("accuracy", 1.0);
        let mut b = a.clone();
        a.set_throughput(std::time::Duration::from_millis(10), 1, Some(1000));
        b.set_throughput(std::time::Duration::from_millis(99), 8, Some(1000));
        assert_ne!(a, b);
        assert_eq!(a.without_timing(), b.without_timing());
        // A genuine result difference still shows through.
        b.scalar("accuracy", 0.5);
        assert_ne!(a.without_timing(), b.without_timing());
    }

    #[test]
    fn zero_wall_time_leaves_rate_unset() {
        let mut r = RunReport::new("instant");
        r.set_throughput(std::time::Duration::ZERO, 4, Some(123));
        assert_eq!(r.sim_cycles_per_sec, None);
        assert_eq!(r.host_threads, Some(4));
    }
}
