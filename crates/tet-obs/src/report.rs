//! Run reports: the metrics layer attached to every simulator run.
//!
//! A [`RunReport`] is a named bag of metadata strings, scalar metrics,
//! integer counters, per-stage cycle accounting, and latency histograms
//! with percentile summaries. It serializes to deterministic JSON (keys are
//! `BTreeMap`-sorted) via the crate's own [`crate::json`] layer and parses
//! back for round-trip tests.
//!
//! Every `whisper-bench` binary writes one of these to
//! `target/reports/<bin>.json` so experiment results are machine-readable
//! as well as human-readable.

use std::collections::BTreeMap;

use crate::json::{self, Value};

/// Schema version stamped into every report.
///
/// v2 adds optional throughput/host fields on top of v1
/// ([`RunReport::wall_time_ms`], [`RunReport::host_threads`],
/// [`RunReport::sim_cycles_per_sec`],
/// [`RunReport::host_available_parallelism`]); every v1 field is unchanged
/// and v1 documents still parse.
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`RunReport::from_json`] accepts.
pub const REPORT_SCHEMA_MIN_VERSION: u64 = 1;

/// An accumulating latency/value histogram. Keeps raw samples; summaries
/// are computed on demand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Collapses the raw samples into a percentile summary.
    pub fn summarize(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let count = sorted.len() as u64;
        let sum: u64 = sorted.iter().sum();
        let pct = |p: f64| -> u64 {
            // Nearest-rank percentile.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        HistogramSummary {
            count,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sum as f64 / count as f64,
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
        }
    }
}

/// The serialized form of a histogram: count, extrema, mean, percentiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

impl HistogramSummary {
    fn to_value(&self) -> Value {
        let mut o = Value::obj();
        o.set("count", Value::from(self.count));
        o.set("min", Value::from(self.min));
        o.set("max", Value::from(self.max));
        o.set("mean", Value::Num(self.mean));
        o.set("p50", Value::from(self.p50));
        o.set("p90", Value::from(self.p90));
        o.set("p99", Value::from(self.p99));
        o
    }

    fn from_value(v: &Value) -> Result<HistogramSummary, String> {
        let num = |k: &str| -> Result<u64, String> { field(v, k)?.as_u64().ok_or(bad(k)) };
        Ok(HistogramSummary {
            count: num("count")?,
            min: num("min")?,
            max: num("max")?,
            mean: field(v, "mean")?.as_num().ok_or(bad("mean"))?,
            p50: num("p50")?,
            p90: num("p90")?,
            p99: num("p99")?,
        })
    }
}

fn field<'v>(v: &'v Value, k: &str) -> Result<&'v Value, String> {
    v.get(k).ok_or_else(|| format!("missing field {k:?}"))
}

fn bad(k: &str) -> String {
    format!("field {k:?} has the wrong type")
}

/// Machine-readable summary of one simulator run or experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Report name — usually the binary or experiment id (`fig1_tote`).
    pub name: String,
    /// Free-form string metadata (CPU preset, scenario, commit, ...).
    pub meta: BTreeMap<String, String>,
    /// Floating-point metrics (accuracies, ratios, means).
    pub scalars: BTreeMap<String, f64>,
    /// Integer counters (PMU events, event counts).
    pub counters: BTreeMap<String, u64>,
    /// Per-pipeline-stage cycle accounting.
    pub stages: BTreeMap<String, u64>,
    /// Named latency/value distributions.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Wall-clock duration of the run in milliseconds (schema v2;
    /// intentionally excluded from determinism comparisons — see
    /// [`RunReport::without_timing`]).
    pub wall_time_ms: Option<f64>,
    /// Host worker threads the run used (schema v2).
    pub host_threads: Option<u64>,
    /// Simulated cycles per wall-clock second (schema v2).
    pub sim_cycles_per_sec: Option<f64>,
    /// `std::thread::available_parallelism` of the host that produced the
    /// report (schema v2). Written as a JSON number; older reports that
    /// stored it as a `meta` string still parse (see
    /// [`RunReport::from_json`]).
    pub host_available_parallelism: Option<u64>,
}

impl RunReport {
    /// Creates an empty report with the given name.
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            ..RunReport::default()
        }
    }

    /// Sets a metadata string.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.meta.insert(key.to_string(), value.into());
        self
    }

    /// Sets a scalar metric.
    pub fn scalar(&mut self, key: &str, value: f64) -> &mut Self {
        self.scalars.insert(key.to_string(), value);
        self
    }

    /// Sets a counter.
    pub fn counter(&mut self, key: &str, value: u64) -> &mut Self {
        self.counters.insert(key.to_string(), value);
        self
    }

    /// Adds to a counter (creating it at zero).
    pub fn add_counter(&mut self, key: &str, delta: u64) -> &mut Self {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
        self
    }

    /// Sets a per-stage cycle total.
    pub fn stage(&mut self, key: &str, cycles: u64) -> &mut Self {
        self.stages.insert(key.to_string(), cycles);
        self
    }

    /// Attaches a histogram's summary.
    pub fn histogram(&mut self, key: &str, hist: &Histogram) -> &mut Self {
        self.histograms.insert(key.to_string(), hist.summarize());
        self
    }

    /// Records the schema-v2 throughput fields in one call: wall time,
    /// host thread count, and — when `sim_cycles` is known — the derived
    /// simulated-cycles-per-second rate.
    pub fn set_throughput(
        &mut self,
        wall: std::time::Duration,
        host_threads: usize,
        sim_cycles: Option<u64>,
    ) -> &mut Self {
        let secs = wall.as_secs_f64();
        self.wall_time_ms = Some(secs * 1e3);
        self.host_threads = Some(host_threads as u64);
        self.sim_cycles_per_sec = sim_cycles.filter(|_| secs > 0.0).map(|c| c as f64 / secs);
        self
    }

    /// Returns a copy with the host-timing-dependent v2 fields cleared.
    ///
    /// Determinism checks compare `a.without_timing() == b.without_timing()`:
    /// everything the simulation computes must match bit-for-bit across
    /// thread counts, while wall time and throughput legitimately vary.
    pub fn without_timing(&self) -> RunReport {
        RunReport {
            wall_time_ms: None,
            host_threads: None,
            sim_cycles_per_sec: None,
            host_available_parallelism: None,
            ..self.clone()
        }
    }

    /// Serializes to the JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = Value::obj();
        o.set("schema_version", Value::from(REPORT_SCHEMA_VERSION));
        o.set("name", Value::from(self.name.as_str()));
        let map_obj = |pairs: Vec<(String, Value)>| Value::Obj(pairs);
        o.set(
            "meta",
            map_obj(
                self.meta
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
                    .collect(),
            ),
        );
        o.set(
            "scalars",
            map_obj(
                self.scalars
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        );
        o.set(
            "counters",
            map_obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        o.set(
            "stages",
            map_obj(
                self.stages
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        );
        o.set(
            "histograms",
            map_obj(
                self.histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        );
        if let Some(ms) = self.wall_time_ms {
            o.set("wall_time_ms", Value::Num(ms));
        }
        if let Some(ht) = self.host_threads {
            o.set("host_threads", Value::from(ht));
        }
        if let Some(rate) = self.sim_cycles_per_sec {
            o.set("sim_cycles_per_sec", Value::Num(rate));
        }
        if let Some(hap) = self.host_available_parallelism {
            o.set("host_available_parallelism", Value::from(hap));
        }
        o
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON (inverse of [`RunReport::to_json`]).
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v = json::parse(text)?;
        let version = field(&v, "schema_version")?
            .as_u64()
            .ok_or(bad("schema_version"))?;
        if !(REPORT_SCHEMA_MIN_VERSION..=REPORT_SCHEMA_VERSION).contains(&version) {
            return Err(format!("unsupported schema_version {version}"));
        }
        let name = field(&v, "name")?.as_str().ok_or(bad("name"))?.to_string();
        let obj_pairs = |key: &str| -> Result<Vec<(String, Value)>, String> {
            match field(&v, key)? {
                Value::Obj(pairs) => Ok(pairs.clone()),
                _ => Err(bad(key)),
            }
        };
        let mut report = RunReport::new(&name);
        for (k, val) in obj_pairs("meta")? {
            report
                .meta
                .insert(k.clone(), val.as_str().ok_or(bad(&k))?.to_string());
        }
        for (k, val) in obj_pairs("scalars")? {
            report
                .scalars
                .insert(k.clone(), val.as_num().ok_or(bad(&k))?);
        }
        for (k, val) in obj_pairs("counters")? {
            report
                .counters
                .insert(k.clone(), val.as_u64().ok_or(bad(&k))?);
        }
        for (k, val) in obj_pairs("stages")? {
            report
                .stages
                .insert(k.clone(), val.as_u64().ok_or(bad(&k))?);
        }
        for (k, val) in obj_pairs("histograms")? {
            report
                .histograms
                .insert(k, HistogramSummary::from_value(&val)?);
        }
        // v2 throughput fields: optional in v2, absent in v1.
        if let Some(val) = v.get("wall_time_ms") {
            report.wall_time_ms = Some(val.as_num().ok_or(bad("wall_time_ms"))?);
        }
        if let Some(val) = v.get("host_threads") {
            report.host_threads = Some(val.as_u64().ok_or(bad("host_threads"))?);
        }
        if let Some(val) = v.get("sim_cycles_per_sec") {
            report.sim_cycles_per_sec = Some(val.as_num().ok_or(bad("sim_cycles_per_sec"))?);
        }
        if let Some(val) = v.get("host_available_parallelism") {
            report.host_available_parallelism =
                Some(val.as_u64().ok_or(bad("host_available_parallelism"))?);
        } else if let Some(s) = report.meta.get("host_available_parallelism") {
            // Legacy reports carried the value as a meta string.
            report.host_available_parallelism = s.parse().ok();
        }
        Ok(report)
    }

    /// Writes the report to `target/reports/<name>.json`, creating the
    /// directory if needed. Returns the path written.
    ///
    /// The directory can be overridden with the `TET_REPORT_DIR`
    /// environment variable (used by `scripts/repro_all.sh --json`).
    pub fn write_default(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var_os("TET_REPORT_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target/reports"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        assert_eq!(Histogram::new().summarize(), HistogramSummary::default());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut h = Histogram::new();
        for v in [12u64, 44, 44, 300] {
            h.record(v);
        }
        let mut r = RunReport::new("fig1_tote");
        r.set_meta("cpu", "intel-i7");
        r.set_meta("scenario", "meltdown");
        r.scalar("accuracy", 0.96875);
        r.counter("runs", 256);
        r.counter("int_misc.recovery_cycles", 4096);
        r.stage("frontend_stall", 120);
        r.stage("exec", 800);
        r.histogram("tote_cycles", &h);
        let text = r.to_json();
        let back = RunReport::from_json(&text).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let mut r = RunReport::new("x").to_value();
        r.set("schema_version", Value::from(99u64));
        assert!(RunReport::from_json(&r.to_json()).is_err());
    }

    #[test]
    fn v2_throughput_fields_round_trip() {
        let mut r = RunReport::new("bench");
        r.set_throughput(std::time::Duration::from_millis(2500), 8, Some(5_000_000));
        assert_eq!(r.wall_time_ms, Some(2500.0));
        assert_eq!(r.host_threads, Some(8));
        assert_eq!(r.sim_cycles_per_sec, Some(2_000_000.0));
        let back = RunReport::from_json(&r.to_json()).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 report has no throughput fields and schema_version 1.
        let mut v = RunReport::new("legacy").to_value();
        v.set("schema_version", Value::from(1u64));
        let r = RunReport::from_json(&v.to_json()).expect("v1 parses");
        assert_eq!(r.name, "legacy");
        assert_eq!(r.wall_time_ms, None);
        assert_eq!(r.host_threads, None);
        assert_eq!(r.sim_cycles_per_sec, None);
    }

    #[test]
    fn host_available_parallelism_round_trips_as_number() {
        let mut r = RunReport::new("bench");
        r.host_available_parallelism = Some(16);
        let text = r.to_json();
        assert!(
            text.contains("\"host_available_parallelism\": 16"),
            "must serialize as a JSON number, got: {text}"
        );
        let back = RunReport::from_json(&text).expect("round-trips");
        assert_eq!(back.host_available_parallelism, Some(16));
    }

    #[test]
    fn host_available_parallelism_accepts_legacy_meta_string() {
        let mut r = RunReport::new("legacy");
        r.set_meta("host_available_parallelism", "4");
        let back = RunReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.host_available_parallelism, Some(4));
        // The numeric field wins when both are present.
        let mut v = back.to_value();
        v.set("host_available_parallelism", Value::from(32u64));
        let both = RunReport::from_json(&v.to_json()).expect("parses");
        assert_eq!(both.host_available_parallelism, Some(32));
    }

    #[test]
    fn without_timing_masks_only_the_v2_fields() {
        let mut a = RunReport::new("run");
        a.scalar("accuracy", 1.0);
        let mut b = a.clone();
        a.set_throughput(std::time::Duration::from_millis(10), 1, Some(1000));
        b.set_throughput(std::time::Duration::from_millis(99), 8, Some(1000));
        assert_ne!(a, b);
        assert_eq!(a.without_timing(), b.without_timing());
        // A genuine result difference still shows through.
        b.scalar("accuracy", 0.5);
        assert_ne!(a.without_timing(), b.without_timing());
    }

    #[test]
    fn zero_wall_time_leaves_rate_unset() {
        let mut r = RunReport::new("instant");
        r.set_throughput(std::time::Duration::ZERO, 4, Some(123));
        assert_eq!(r.sim_cycles_per_sec, None);
        assert_eq!(r.host_threads, Some(4));
    }
}
