//! One parser for the boolean `TET_*` environment switches.
//!
//! The repository grew half a dozen on/off environment variables
//! (`TET_FF`, `TET_BATCH`, `TET_PREDECODE`, `TET_SNAPSHOT`,
//! `TET_METRICS`, `TET_PROF`, `TET_CHECK`, `TET_QUIET`) and, with them,
//! three subtly different parsers: some sites treated *any* set value as
//! enabled, some required exactly `=1`, some required "non-empty and not
//! `0`". `TET_METRICS=true` therefore enabled nothing while
//! `TET_FF=false` disabled nothing — a trap once several switches are
//! set together on live server requests.
//!
//! [`env_flag`] is the single shared rule, used by every switch:
//!
//! * variable **unset** → the switch's `default`;
//! * set to `0`, `false`, `off`, `no` (any case, surrounding whitespace
//!   ignored) or the empty string → **disabled**;
//! * set to anything else (`1`, `true`, `on`, `yes`, ...) → **enabled**.
//!
//! Callers that cache the answer process-wide (the hot-path switches do,
//! via `OnceLock`) keep their caching; only the parse is centralized.

/// Parses one boolean environment switch under the shared rule (see the
/// module docs). `default` is returned when `name` is unset.
///
/// # Examples
///
/// ```
/// // Unset variables fall back to the given default.
/// assert!(tet_obs::env_flag("TET_OBS_DOCTEST_UNSET", true));
/// assert!(!tet_obs::env_flag("TET_OBS_DOCTEST_UNSET", false));
/// ```
pub fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var_os(name) {
        None => default,
        Some(v) => parse_flag_value(&v.to_string_lossy()),
    }
}

/// The value rule of [`env_flag`], on an already-fetched string: `0`,
/// `false`, `off`, `no` (case-insensitive, trimmed) and the empty string
/// disable; everything else enables.
pub fn parse_flag_value(value: &str) -> bool {
    let v = value.trim();
    !(v.is_empty()
        || v.eq_ignore_ascii_case("0")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("no"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_matrix() {
        // Disabling spellings — every site must treat these as "off".
        for off in [
            "0", "false", "FALSE", "False", "off", "OFF", "no", "", "  0  ", " false ",
        ] {
            assert!(!parse_flag_value(off), "{off:?} must disable");
        }
        // Enabling spellings — including the historical bare `=1` and
        // arbitrary truthy strings sites used to disagree on.
        for on in ["1", "true", "TRUE", "on", "yes", "2", "enabled", " 1 "] {
            assert!(parse_flag_value(on), "{on:?} must enable");
        }
    }

    #[test]
    fn unset_uses_default() {
        // A name no test environment sets.
        assert!(env_flag("TET_SURELY_UNSET_FLAG_XYZ", true));
        assert!(!env_flag("TET_SURELY_UNSET_FLAG_XYZ", false));
    }

    #[test]
    fn set_values_are_read_through_the_shared_rule() {
        // Process-global environment: use a dedicated name, restore after.
        let name = "TET_ENV_FLAG_UNIT_TEST";
        for (val, want) in [
            ("1", true),
            ("true", true),
            ("anything", true),
            ("0", false),
            ("false", false),
            ("off", false),
            ("", false),
        ] {
            std::env::set_var(name, val);
            assert_eq!(env_flag(name, !want), want, "value {val:?}");
        }
        std::env::remove_var(name);
    }
}
