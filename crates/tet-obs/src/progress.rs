//! Progress reporting for long-running experiment binaries.
//!
//! Experiment bins used to sprinkle ad-hoc `eprintln!` calls between their
//! table output; this module gives them one consistent, silenceable
//! channel. Progress goes to **stderr** (results go to stdout), every line
//! is prefixed with the experiment name, and setting `TET_QUIET=1` (as
//! `scripts/repro_all.sh --json` does) suppresses it entirely.

use std::time::Instant;

/// Whether `TET_QUIET` is enabled (see [`crate::env_flag`]): the
/// process-wide "suppress all progress and status output on stderr"
/// switch. Binaries consult this before any unconditional `eprintln!`;
/// failure diagnostics are exempt.
pub fn quiet() -> bool {
    crate::env_flag("TET_QUIET", false)
}

/// A progress reporter for one named experiment or phase.
#[derive(Debug)]
pub struct Progress {
    label: String,
    quiet: bool,
    started: Instant,
}

impl Progress {
    /// Creates a reporter; honors `TET_QUIET=1`.
    pub fn new(label: &str) -> Progress {
        Progress {
            label: label.to_string(),
            quiet: quiet(),
            started: Instant::now(),
        }
    }

    /// Emits one progress line to stderr (unless quiet).
    pub fn note(&self, msg: &str) {
        if !self.quiet {
            eprintln!("[{}] {}", self.label, msg);
        }
    }

    /// Emits a `step/total` progress line to stderr (unless quiet).
    pub fn step(&self, done: usize, total: usize, what: &str) {
        if !self.quiet {
            eprintln!("[{}] {}/{} {}", self.label, done, total, what);
        }
    }

    /// Emits a completion line with wall-clock elapsed time.
    pub fn done(&self) {
        if !self.quiet {
            eprintln!(
                "[{}] done in {:.1}s",
                self.label,
                self.started.elapsed().as_secs_f64()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_api_is_callable() {
        // Output goes to stderr; this just exercises the paths.
        let p = Progress::new("unit-test");
        p.note("starting");
        p.step(1, 2, "rows");
        p.done();
    }
}
