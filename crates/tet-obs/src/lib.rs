//! Observability for the Whisper TET simulator.
//!
//! This crate is the simulator's tracing and metrics backbone. It has three
//! layers, all dependency-free (the build environment is offline):
//!
//! 1. **Events** ([`event`]) — a structured, `Copy` vocabulary covering the
//!    µop lifecycle (rename → execute → retire/squash), frontend delivery,
//!    branch prediction, fault raise/delivery, cache/TLB/LFB activity, page
//!    walks, timer interrupts and SMT contention.
//! 2. **Sinks** ([`sink`]) — the object-safe [`sink::TraceSink`] trait plus
//!    a lock-free flight-recorder ring ([`sink::RingSink`]), an unbounded
//!    recorder ([`sink::MemorySink`]) and a tee ([`sink::FanoutSink`]).
//!    Producers hold a [`sink::SinkHandle`]; a disabled handle costs one
//!    branch per would-be event.
//! 3. **Reports and exporters** ([`report`], [`chrome`], [`json`]) — the
//!    [`report::RunReport`] metrics bag every run can produce (JSON, with
//!    counters, per-stage cycles and percentile histograms) and a Chrome
//!    `trace_event` exporter whose output loads in Perfetto.
//!
//! The dependency direction is strictly upward: `tet-mem`, `tet-uarch` and
//! the benches depend on `tet-obs`, never the reverse. Events therefore use
//! crate-local enums ([`event::SquashCause`], [`event::MemLevel`], ...)
//! that producers convert into at the emission site.

#![warn(missing_docs)]

pub mod chrome;
pub mod env;
pub mod event;
pub mod json;
pub mod progress;
pub mod report;
pub mod sink;

pub use chrome::ChromeTrace;
pub use env::{env_flag, parse_flag_value};
pub use event::{DeliveryRoute, EventKind, FaultClass, MemLevel, SquashCause, TlbKind, TraceEvent};
pub use progress::{quiet, Progress};
pub use report::{Histogram, HistogramSummary, MetricsSection, RunReport, REPORT_SCHEMA_VERSION};
pub use sink::{FanoutSink, MemorySink, NullSink, RingSink, SinkHandle, TraceSink};
