//! Chrome `trace_event` exporter.
//!
//! Converts a stream of [`TraceEvent`]s into the Chrome trace-event JSON
//! format (the `{"traceEvents": [...]}` object form) loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//!
//! * each µop becomes one complete (`"ph":"X"`) slice from rename to
//!   retire/squash, on a per-µop track (`tid` = µop id within its thread's
//!   process), with execution start/finish and fate in `args`;
//! * faults, resteers, squash causes, timer interrupts and SMT stalls
//!   become instant events (`"ph":"i"`);
//! * frontend delivery and cache/TLB activity become counter events
//!   (`"ph":"C"`) so Perfetto draws them as time series.
//!
//! One simulated cycle maps to one microsecond of trace time (`ts` is in
//! µs), which makes Perfetto's zoom/duration labels read directly as
//! cycle counts.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};
use crate::json::Value;

/// Builds Chrome trace JSON from recorded events.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
    process_name: String,
}

struct UopSlice {
    pc: u64,
    op: &'static str,
    renamed_at: u64,
    started_at: Option<u64>,
    done_at: Option<u64>,
    end: Option<(u64, &'static str)>, // (cycle, "retired" | squash cause)
    thread: u8,
}

impl ChromeTrace {
    /// Creates an exporter over the given events.
    pub fn new(process_name: &str, events: Vec<TraceEvent>) -> ChromeTrace {
        ChromeTrace {
            events,
            process_name: process_name.to_string(),
        }
    }

    /// Renders the `{"traceEvents": [...]}` JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Renders the JSON value tree (used by schema tests).
    pub fn to_value(&self) -> Value {
        let mut out: Vec<Value> = Vec::new();

        // Process metadata: one pid per hardware thread.
        let mut threads: Vec<u8> = self.events.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        if threads.is_empty() {
            threads.push(0);
        }
        for &t in &threads {
            let mut meta = Value::obj();
            meta.set("name", Value::from("process_name"));
            meta.set("ph", Value::from("M"));
            meta.set("pid", Value::from(u64::from(t)));
            meta.set("tid", Value::from(0u64));
            meta.set("ts", Value::from(0u64));
            let mut args = Value::obj();
            args.set(
                "name",
                Value::from(format!("{} (thread {})", self.process_name, t)),
            );
            meta.set("args", args);
            out.push(meta);
        }

        // Pass 1: fold µop lifecycle events into slices.
        let mut slices: BTreeMap<(u8, u64), UopSlice> = BTreeMap::new();
        let mut last_cycle: u64 = 0;
        for ev in &self.events {
            last_cycle = last_cycle.max(ev.cycle);
            match ev.kind {
                EventKind::UopRenamed { id, pc, op } => {
                    slices.insert(
                        (ev.thread, id),
                        UopSlice {
                            pc,
                            op,
                            renamed_at: ev.cycle,
                            started_at: None,
                            done_at: None,
                            end: None,
                            thread: ev.thread,
                        },
                    );
                }
                EventKind::UopExecuted {
                    id,
                    started_at,
                    done_at,
                } => {
                    if let Some(s) = slices.get_mut(&(ev.thread, id)) {
                        s.started_at = Some(started_at);
                        s.done_at = Some(done_at);
                    }
                }
                EventKind::UopRetired { id } => {
                    if let Some(s) = slices.get_mut(&(ev.thread, id)) {
                        s.end = Some((ev.cycle, "retired"));
                    }
                }
                EventKind::UopSquashed { id, cause } => {
                    if let Some(s) = slices.get_mut(&(ev.thread, id)) {
                        s.end = Some((ev.cycle, cause.label()));
                    }
                }
                _ => {}
            }
        }

        // Emit µop slices: tid = µop id so each µop gets its own lane and
        // overlap (the transient window) is visible at a glance.
        for ((_, id), s) in &slices {
            let (end_cycle, fate) = s.end.unwrap_or((last_cycle, "in_flight"));
            let mut e = Value::obj();
            e.set("name", Value::from(format!("{} @{:#x}", s.op, s.pc)));
            e.set("cat", Value::from("uop"));
            e.set("ph", Value::from("X"));
            e.set("pid", Value::from(u64::from(s.thread)));
            e.set("tid", Value::from(*id));
            e.set("ts", Value::from(s.renamed_at));
            e.set(
                "dur",
                Value::from(end_cycle.saturating_sub(s.renamed_at).max(1)),
            );
            let mut args = Value::obj();
            args.set("uop", Value::from(*id));
            args.set("pc", Value::from(format!("{:#x}", s.pc)));
            args.set("fate", Value::from(fate));
            if let Some(at) = s.started_at {
                args.set("exec_start", Value::from(at));
            }
            if let Some(at) = s.done_at {
                args.set("exec_done", Value::from(at));
            }
            e.set("args", args);
            out.push(e);
        }

        // Pass 2: instants and counters on dedicated tracks.
        for ev in &self.events {
            match ev.kind {
                EventKind::FrontendCycle {
                    dsb_uops,
                    mite_uops,
                    stalled,
                } => {
                    let mut e = counter(ev, "frontend delivery");
                    let mut args = Value::obj();
                    args.set("dsb", Value::from(dsb_uops));
                    args.set("mite", Value::from(mite_uops));
                    args.set("stalled", Value::from(u32::from(stalled)));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::CacheAccess { level, latency, .. } => {
                    let mut e = counter(ev, "mem latency");
                    let mut args = Value::obj();
                    args.set(level.label(), Value::from(latency));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::BranchPredicted { .. } | EventKind::TlbLookup { .. } => {
                    // High-volume, low-signal in a timeline; summarized via
                    // RunReport counters instead of cluttering the trace.
                }
                EventKind::Resteer {
                    target_pc,
                    flushed_uops,
                } => {
                    let mut e = instant(ev, "resteer");
                    let mut args = Value::obj();
                    args.set("target_pc", Value::from(format!("{target_pc:#x}")));
                    args.set("flushed_uops", Value::from(flushed_uops));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::FaultRaised { pc, vaddr, class } => {
                    let mut e = instant(ev, "fault raised");
                    let mut args = Value::obj();
                    args.set("pc", Value::from(format!("{pc:#x}")));
                    args.set("vaddr", Value::from(format!("{vaddr:#x}")));
                    args.set("class", Value::from(class.label()));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::FaultDelivered {
                    pc,
                    class,
                    route,
                    squashed_uops,
                } => {
                    let mut e = instant(ev, "fault delivered");
                    let mut args = Value::obj();
                    args.set("pc", Value::from(format!("{pc:#x}")));
                    args.set("class", Value::from(class.label()));
                    args.set("route", Value::from(route.label()));
                    args.set("squashed_uops", Value::from(squashed_uops));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::TimerInterrupt { until } => {
                    let mut e = instant(ev, "timer interrupt");
                    let mut args = Value::obj();
                    args.set("until", Value::from(until));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::SmtContention { until } => {
                    let mut e = instant(ev, "smt contention");
                    let mut args = Value::obj();
                    args.set("until", Value::from(until));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::PageWalk {
                    vaddr,
                    cycles,
                    mapped,
                } => {
                    let mut e = instant(ev, "page walk");
                    let mut args = Value::obj();
                    args.set("vaddr", Value::from(format!("{vaddr:#x}")));
                    args.set("cycles", Value::from(cycles));
                    args.set("mapped", Value::from(mapped));
                    e.set("args", args);
                    out.push(e);
                }
                EventKind::TlbFlush { kind, kept_global } => {
                    let mut e = instant(ev, "tlb flush");
                    let mut args = Value::obj();
                    args.set("tlb", Value::from(kind.label()));
                    args.set("kept_global", Value::from(kept_global));
                    e.set("args", args);
                    out.push(e);
                }
                _ => {}
            }
        }

        let mut doc = Value::obj();
        doc.set("traceEvents", Value::Arr(out));
        doc.set("displayTimeUnit", Value::from("ns"));
        let mut meta = Value::obj();
        meta.set("tool", Value::from("tet-obs"));
        meta.set("time_unit", Value::from("1 ts = 1 simulated cycle"));
        doc.set("metadata", meta);
        doc
    }
}

/// Common fields for an instant (`ph:"i"`) event on the "pipeline events"
/// track of the event's thread.
fn instant(ev: &TraceEvent, name: &str) -> Value {
    let mut e = Value::obj();
    e.set("name", Value::from(name));
    e.set("cat", Value::from("pipeline"));
    e.set("ph", Value::from("i"));
    e.set("s", Value::from("t"));
    e.set("pid", Value::from(u64::from(ev.thread)));
    e.set("tid", Value::from(0u64));
    e.set("ts", Value::from(ev.cycle));
    e
}

/// Common fields for a counter (`ph:"C"`) event.
fn counter(ev: &TraceEvent, name: &str) -> Value {
    let mut e = Value::obj();
    e.set("name", Value::from(name));
    e.set("cat", Value::from("counter"));
    e.set("ph", Value::from("C"));
    e.set("pid", Value::from(u64::from(ev.thread)));
    e.set("tid", Value::from(0u64));
    e.set("ts", Value::from(ev.cycle));
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultClass, SquashCause};
    use crate::json;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 1,
                thread: 0,
                kind: EventKind::UopRenamed {
                    id: 0,
                    pc: 0x400,
                    op: "load",
                },
            },
            TraceEvent {
                cycle: 4,
                thread: 0,
                kind: EventKind::UopExecuted {
                    id: 0,
                    started_at: 2,
                    done_at: 4,
                },
            },
            TraceEvent {
                cycle: 9,
                thread: 0,
                kind: EventKind::UopSquashed {
                    id: 0,
                    cause: SquashCause::Fault,
                },
            },
            TraceEvent {
                cycle: 9,
                thread: 0,
                kind: EventKind::FaultRaised {
                    pc: 0x400,
                    vaddr: 0xffff_8000_0000_0000,
                    class: FaultClass::Permission,
                },
            },
            TraceEvent {
                cycle: 3,
                thread: 0,
                kind: EventKind::FrontendCycle {
                    dsb_uops: 4,
                    mite_uops: 0,
                    stalled: false,
                },
            },
        ]
    }

    #[test]
    fn trace_events_have_required_fields() {
        let doc = ChromeTrace::new("test", sample_events()).to_value();
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for e in events {
            assert!(e.get("name").and_then(Value::as_str).is_some());
            assert!(e.get("ph").and_then(Value::as_str).is_some());
            assert!(e.get("pid").and_then(Value::as_u64).is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
            assert!(e.get("ts").and_then(Value::as_u64).is_some());
            if e.get("ph").and_then(Value::as_str) == Some("X") {
                assert!(e.get("dur").and_then(Value::as_u64).is_some());
            }
        }
    }

    #[test]
    fn uop_slice_spans_rename_to_squash() {
        let doc = ChromeTrace::new("test", sample_events()).to_value();
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one uop slice");
        assert_eq!(slice.get("ts").and_then(Value::as_u64), Some(1));
        assert_eq!(slice.get("dur").and_then(Value::as_u64), Some(8));
        let args = slice.get("args").expect("args");
        assert_eq!(
            args.get("fate").and_then(Value::as_str),
            Some("fault"),
            "squash cause becomes the fate"
        );
    }

    #[test]
    fn output_parses_as_json() {
        let text = ChromeTrace::new("test", sample_events()).to_json();
        let doc = json::parse(&text).expect("valid JSON");
        assert!(doc.get("traceEvents").is_some());
    }
}
