//! Golden-file tests for the exporters: the Chrome trace JSON and the
//! RunReport JSON are compared byte-for-byte against committed fixtures,
//! and structurally validated against the trace_event schema.
//!
//! Regenerate the fixtures after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test -p tet-obs --test golden`

use std::path::PathBuf;

use tet_obs::{
    ChromeTrace, EventKind, FaultClass, Histogram, MemLevel, RunReport, SquashCause, TlbKind,
    TraceEvent,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its fixture; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A fixed event stream exercising every exporter arm: µop lifecycle,
/// frontend delivery, fault raise/delivery, resteer, cache access, page
/// walk, TLB flush, timer interrupt and SMT contention.
fn fixture_events() -> Vec<TraceEvent> {
    let ev = |cycle: u64, kind: EventKind| TraceEvent {
        cycle,
        thread: 0,
        kind,
    };
    vec![
        ev(
            0,
            EventKind::FrontendCycle {
                dsb_uops: 4,
                mite_uops: 0,
                stalled: false,
            },
        ),
        ev(
            1,
            EventKind::UopRenamed {
                id: 0,
                pc: 0x10,
                op: "load",
            },
        ),
        ev(
            1,
            EventKind::UopRenamed {
                id: 1,
                pc: 0x11,
                op: "jcc",
            },
        ),
        ev(
            2,
            EventKind::CacheAccess {
                pa: 0x7f00_0000,
                level: MemLevel::L2,
                latency: 12,
                fetch: false,
            },
        ),
        ev(
            3,
            EventKind::PageWalk {
                vaddr: 0xffff_8000_0000_0000,
                cycles: 60,
                mapped: false,
            },
        ),
        ev(
            4,
            EventKind::UopExecuted {
                id: 0,
                started_at: 2,
                done_at: 4,
            },
        ),
        ev(
            4,
            EventKind::FaultRaised {
                pc: 0x10,
                vaddr: 0xffff_8000_0000_0000,
                class: FaultClass::Permission,
            },
        ),
        ev(
            5,
            EventKind::Resteer {
                target_pc: 0x40,
                flushed_uops: 1,
            },
        ),
        ev(
            5,
            EventKind::UopSquashed {
                id: 1,
                cause: SquashCause::BranchMispredict,
            },
        ),
        ev(
            9,
            EventKind::FaultDelivered {
                pc: 0x10,
                class: FaultClass::Permission,
                route: tet_obs::DeliveryRoute::Exception,
                squashed_uops: 1,
            },
        ),
        ev(
            9,
            EventKind::UopSquashed {
                id: 0,
                cause: SquashCause::Fault,
            },
        ),
        ev(
            10,
            EventKind::TlbFlush {
                kind: TlbKind::Data,
                kept_global: true,
            },
        ),
        ev(11, EventKind::TimerInterrupt { until: 40 }),
        ev(12, EventKind::SmtContention { until: 15 }),
    ]
}

fn fixture_report() -> RunReport {
    let mut hist = Histogram::new();
    for v in [10u64, 12, 12, 14, 90] {
        hist.record(v);
    }
    let mut rep = RunReport::new("golden_fixture");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.scalar("ipc", 2.5);
    rep.counter("cycles", 1234);
    rep.add_counter("cycles", 6);
    rep.stage("rename", 400);
    rep.histogram("tote", &hist);
    rep
}

#[test]
fn chrome_trace_matches_golden() {
    let json = ChromeTrace::new("golden", fixture_events()).to_json();
    assert_golden("chrome_trace.json", &json);
}

#[test]
fn run_report_matches_golden() {
    assert_golden("run_report.json", &fixture_report().to_json());
}

#[test]
fn run_report_golden_round_trips() {
    let rep = fixture_report();
    let back = RunReport::from_json(&rep.to_json()).expect("parses");
    assert_eq!(back.to_json(), rep.to_json());
}

/// Structural schema check: every trace event carries the fields the
/// Chrome trace_event format requires for its phase.
#[test]
fn chrome_trace_is_schema_valid() {
    use tet_obs::json::Value;
    let doc = ChromeTrace::new("golden", fixture_events()).to_value();
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(events.len() >= fixture_events().len() / 2);
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("tid").and_then(Value::as_u64).is_some());
        assert!(e.get("ts").and_then(Value::as_u64).is_some());
        match ph {
            "X" => {
                assert!(e.get("dur").and_then(Value::as_u64).is_some());
                assert!(e.get("args").is_some());
            }
            "i" => assert_eq!(e.get("s").and_then(Value::as_str), Some("t")),
            "C" => assert!(e.get("args").is_some()),
            "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
}
