//! Property tests for `RingSink` overflow accounting.
//!
//! The flight-recorder ring must never lose count of what happened to an
//! event: at any quiesced point, every event ever emitted is either still
//! in the ring (returned by `drain_recent`) or accounted as overwritten —
//! `emitted == drained + overwritten` — and the drained window is the
//! most recent events in exact emission order.

use proptest::prelude::*;

use tet_obs::event::{EventKind, TraceEvent};
use tet_obs::sink::{RingSink, TraceSink};

/// Emits `n` sequentially-tagged events starting at id `base`.
fn emit_burst(ring: &RingSink, base: u64, n: u64) {
    for i in 0..n {
        ring.emit(TraceEvent {
            cycle: base + i,
            thread: 0,
            kind: EventKind::UopRetired { id: base + i },
        });
    }
}

/// The id tag of a drained event (inverse of `emit_burst`).
fn event_id(ev: &TraceEvent) -> u64 {
    match ev.kind {
        EventKind::UopRetired { id } => id,
        _ => panic!("unexpected event kind in ring"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `emitted == drained + overwritten` after any sequence of bursts,
    /// for any capacity — whether the ring wrapped zero, one or many
    /// times.
    #[test]
    fn overflow_accounting_balances(
        capacity in 1usize..700,
        bursts in prop::collection::vec(0u64..400, 1..6),
    ) {
        let ring = RingSink::with_capacity(capacity);
        let mut total = 0u64;
        for (b, &n) in bursts.iter().enumerate() {
            emit_burst(&ring, total, n);
            total += n;
            let drained = ring.drain_recent();
            prop_assert_eq!(ring.emitted(), total, "burst {}", b);
            prop_assert_eq!(
                ring.emitted(),
                drained.len() as u64 + ring.overwritten(),
                "burst {}: {} emitted, {} drained, {} overwritten",
                b, ring.emitted(), drained.len(), ring.overwritten()
            );
        }
    }

    /// `drain_recent` returns exactly the most recent events, oldest
    /// first, with no gaps, duplicates or reordering.
    #[test]
    fn drain_preserves_emission_order(
        capacity in 1usize..700,
        n in 0u64..2000,
    ) {
        let ring = RingSink::with_capacity(capacity);
        emit_burst(&ring, 0, n);
        let drained = ring.drain_recent();
        // The window ends at the newest event and is contiguous.
        let ids: Vec<u64> = drained.iter().map(event_id).collect();
        let start = n - ids.len() as u64;
        let expect: Vec<u64> = (start..n).collect();
        prop_assert_eq!(&ids, &expect);
        // And the window is as large as the (rounded) capacity allows.
        let cap = capacity.max(64).next_power_of_two() as u64;
        prop_assert_eq!(ids.len() as u64, n.min(cap));
        prop_assert_eq!(ring.overwritten(), n.saturating_sub(cap));
    }
}

/// Draining twice without new emissions is idempotent — `drain_recent`
/// copies, it does not consume.
#[test]
fn drain_is_nondestructive() {
    let ring = RingSink::with_capacity(64);
    emit_burst(&ring, 0, 100);
    let a = ring.drain_recent();
    let b = ring.drain_recent();
    assert_eq!(a, b);
    assert_eq!(ring.emitted(), 100);
    assert_eq!(ring.overwritten(), 36);
}
