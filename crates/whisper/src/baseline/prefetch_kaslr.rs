//! KASLR probing baselines: the classic prefetch (walk-depth) probe that
//! FLARE defeats, and the EntryBleed syscall+prefetch probe.

use tet_os::layout::{slot_base, KPTI_TRAMPOLINE_OFFSET, NUM_SLOTS, SLOT_SIZE};
use tet_os::Kernel;
use tet_uarch::Machine;

use crate::attacks::KaslrBreak;
use crate::gadget::PrefetchProbe;

/// The classic prefetch-timing KASLR probe (Hund et al.-style): a
/// software prefetch of a mapped kernel address completes a deeper page
/// walk than an unmapped one, so walk timing exposes the layout. FLARE's
/// dummy mappings give every candidate a full-depth walk, flattening the
/// signal — this baseline is the one the FLARE defense targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchKaslr {
    /// Minimum timing gap to accept a detection.
    pub min_gap: u64,
}

impl Default for PrefetchKaslr {
    fn default() -> Self {
        PrefetchKaslr { min_gap: 8 }
    }
}

impl PrefetchKaslr {
    /// Sweeps all slots with prefetch probes.
    pub fn break_kaslr(&self, machine: &mut Machine, kernel: &Kernel) -> KaslrBreak {
        let freq = machine.config().freq_ghz;
        let mut slot_totes = Vec::with_capacity(NUM_SLOTS as usize);
        let mut cycles = 0u64;
        let mut probes = 0u64;
        // Warm the probe's code path so slot 0 is not a cold-frontend
        // outlier.
        let warm = PrefetchProbe::build(slot_base(0), false);
        let _ = machine.run(&warm.program, &tet_uarch::RunConfig::default());
        for slot in 0..NUM_SLOTS {
            let probe = PrefetchProbe::build(slot_base(slot), false);
            machine.flush_tlbs();
            let r = machine.run(&probe.program, &tet_uarch::RunConfig::default());
            cycles += r.cycles;
            probes += 1;
            slot_totes.push(r.regs.get(tet_isa::Reg::Rax));
        }

        // Mapped slots complete the deepest walks: the *high* cluster.
        let found_base = classify_extreme(&slot_totes, self.min_gap, true);
        KaslrBreak {
            success: found_base == Some(kernel.base),
            found_base,
            probes,
            cycles,
            seconds: cycles as f64 / (freq * 1e9),
            slot_totes,
        }
    }
}

/// EntryBleed (2023): a `syscall` enters the kernel through the KPTI
/// trampoline and leaves its TLB entries warm; a prefetch of the correct
/// trampoline candidate then hits the TLB and is distinctly fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryBleedProbe {
    /// Minimum timing gap to accept a detection.
    pub min_gap: u64,
}

impl Default for EntryBleedProbe {
    fn default() -> Self {
        EntryBleedProbe { min_gap: 8 }
    }
}

impl EntryBleedProbe {
    /// Sweeps all trampoline candidates with syscall+prefetch probes.
    pub fn break_kaslr(&self, machine: &mut Machine, kernel: &Kernel) -> KaslrBreak {
        let freq = machine.config().freq_ghz;
        let mut slot_totes = Vec::with_capacity(NUM_SLOTS as usize);
        let mut cycles = 0u64;
        let mut probes = 0u64;
        let warm = PrefetchProbe::build(slot_base(0), true);
        let _ = machine.run(&warm.program, &tet_uarch::RunConfig::default());
        for slot in 0..NUM_SLOTS {
            let probe = PrefetchProbe::build(slot_base(slot), true);
            machine.flush_tlbs();
            let r = machine.run(&probe.program, &tet_uarch::RunConfig::default());
            cycles += r.cycles;
            probes += 1;
            slot_totes.push(r.regs.get(tet_isa::Reg::Rax));
        }

        // The trampoline hit is the *low* (TLB-warm) outlier; the base is
        // the fixed offset below it.
        let found = classify_extreme(&slot_totes, self.min_gap, false);
        let found_base = found.and_then(|hit| {
            let offset_slots = KPTI_TRAMPOLINE_OFFSET / SLOT_SIZE;
            let slot = (hit - slot_base(0)) / SLOT_SIZE;
            (slot >= offset_slots).then(|| hit - KPTI_TRAMPOLINE_OFFSET)
        });
        KaslrBreak {
            success: found_base == Some(kernel.base),
            found_base,
            probes,
            cycles,
            seconds: cycles as f64 / (freq * 1e9),
            slot_totes,
        }
    }
}

/// Finds the first slot in the extreme cluster (`high_wins` selects the
/// high-ToTE cluster) and returns its base address, or `None` when the
/// sweep is featureless.
fn classify_extreme(slot_totes: &[u64], min_gap: u64, high_wins: bool) -> Option<u64> {
    let min = *slot_totes.iter().min()?;
    let max = *slot_totes.iter().max()?;
    if max - min < min_gap {
        return None;
    }
    let threshold = min + (max - min) / 2;
    let idx = slot_totes.iter().position(|&t| {
        if high_wins {
            t > threshold
        } else {
            t < threshold
        }
    })? as u64;
    Some(slot_base(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    #[test]
    fn prefetch_probe_breaks_plain_kaslr() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions {
                seed: 5,
                ..ScenarioOptions::default()
            },
        );
        let r = PrefetchKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(
            r.success,
            "found {:?}, true {:#x}",
            r.found_base, sc.kernel.base
        );
    }

    #[test]
    fn flare_defeats_the_prefetch_probe_but_not_tet() {
        let mk = || {
            Scenario::new(
                CpuConfig::comet_lake_i9_10980xe(),
                &ScenarioOptions {
                    seed: 5,
                    flare: true,
                    ..ScenarioOptions::default()
                },
            )
        };
        let mut sc = mk();
        let pre = PrefetchKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(!pre.success, "FLARE must flatten the prefetch signal");

        let mut sc = mk();
        let tet = crate::attacks::TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(tet.success, "TET must still isolate the real image");
    }

    #[test]
    fn entrybleed_breaks_kaslr_under_kpti() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions {
                seed: 9,
                kpti: true,
                ..ScenarioOptions::default()
            },
        );
        let r = EntryBleedProbe::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(
            r.success,
            "found {:?}, true {:#x}",
            r.found_base, sc.kernel.base
        );
    }
}
