//! Baseline attacks and the defense they trip — the comparison points of
//! Tables 1 and 2.

mod detector;
mod flush_reload;
mod prefetch_kaslr;

pub use detector::{CacheAttackDetector, DetectorVerdict};
pub use flush_reload::FlushReloadMeltdown;
pub use prefetch_kaslr::{EntryBleedProbe, PrefetchKaslr};
