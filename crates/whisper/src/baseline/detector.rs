//! A cache-based attack detector in the spirit of the HPC-monitoring
//! defenses the paper's threat model assumes deployed (§4.2): the victim
//! machine watches for Flush+Reload signatures — bursts of `clflush` and
//! probe-array cache churn. TET slips past it because the channel never
//! touches a probe array and never flushes (Table 1: stateless,
//! transient-only).

use tet_pmu::{Event, PmuSnapshot};

/// What the detector concluded about an activity window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorVerdict {
    /// Whether the window was flagged as a cache side-channel attack.
    pub flagged: bool,
    /// The raw anomaly score (≥ 1.0 flags).
    pub score: f64,
    /// `clflush` instructions observed.
    pub clflushes: u64,
    /// L1 misses observed.
    pub l1_misses: u64,
}

/// Heuristic Flush+Reload detector over PMU deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheAttackDetector {
    /// `clflush` count that alone trips the detector (a probe-array
    /// flush sweep is ≥ 256).
    pub clflush_limit: u64,
    /// L1-miss count contributing to the score (reload sweeps miss on
    /// almost every probe line).
    pub miss_limit: u64,
}

impl Default for CacheAttackDetector {
    fn default() -> Self {
        CacheAttackDetector {
            clflush_limit: 64,
            miss_limit: 192,
        }
    }
}

impl CacheAttackDetector {
    /// Scores one activity window (a PMU delta across it).
    pub fn inspect(&self, delta: &PmuSnapshot) -> DetectorVerdict {
        let clflushes = delta.count(Event::ClflushExecuted);
        let l1_misses = delta.count(Event::MemLoadRetiredL1Miss);
        let score = clflushes as f64 / self.clflush_limit as f64
            + 0.5 * (l1_misses as f64 / self.miss_limit as f64);
        DetectorVerdict {
            flagged: score >= 1.0,
            score,
            clflushes,
            l1_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::TetMeltdown;
    use crate::baseline::FlushReloadMeltdown;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    fn leak_window<F>(f: F) -> PmuSnapshot
    where
        F: FnOnce(&mut Scenario),
    {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        FlushReloadMeltdown::prepare(&mut sc.machine);
        let before = sc.machine.cpu().pmu.snapshot();
        f(&mut sc);
        sc.machine.cpu().pmu.snapshot().delta(&before)
    }

    #[test]
    fn detector_flags_flush_reload() {
        let delta = leak_window(|sc| {
            let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
        });
        let verdict = CacheAttackDetector::default().inspect(&delta);
        assert!(verdict.flagged, "F+R must trip the detector: {verdict:?}");
        assert!(verdict.clflushes >= 256);
    }

    #[test]
    fn detector_misses_tet() {
        let delta = leak_window(|sc| {
            let _ = TetMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
        });
        let verdict = CacheAttackDetector::default().inspect(&delta);
        assert!(
            !verdict.flagged,
            "TET must evade the cache detector: {verdict:?}"
        );
        assert_eq!(verdict.clflushes, 0);
    }

    #[test]
    fn quiet_window_scores_near_zero() {
        let delta = leak_window(|_| {});
        let verdict = CacheAttackDetector::default().inspect(&delta);
        assert_eq!(verdict.score, 0.0);
    }
}
