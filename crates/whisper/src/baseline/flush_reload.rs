//! The classic Meltdown with a **Flush+Reload** covert channel — the
//! baseline that TET-MD replaces.
//!
//! The transient load's value indexes a 256-page probe array; the line
//! the speculative access pulled in survives the squash and is found by
//! timing reloads. Unlike TET, every leaked byte costs 256 `clflush`es
//! and a probe-array cache footprint — exactly what cache-based attack
//! detectors key on (Table 1).

use tet_isa::{Asm, Reg};
use tet_uarch::{Machine, RunConfig, RunExit};

use crate::attacks::{LeakReport, LeakedByte};

/// Base virtual address of the 256-page probe array.
pub const PROBE_ARRAY: u64 = 0x0800_0000;

/// The Flush+Reload Meltdown baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReloadMeltdown {
    /// Reload latency below which a probe line counts as cached.
    pub hit_threshold: u64,
}

impl Default for FlushReloadMeltdown {
    fn default() -> Self {
        FlushReloadMeltdown { hit_threshold: 40 }
    }
}

impl FlushReloadMeltdown {
    /// Maps the probe array (256 user pages). Call once per machine.
    pub fn prepare(machine: &mut Machine) {
        for i in 0..256u64 {
            machine.map_user_page(PROBE_ARRAY + i * 4096);
        }
    }

    fn flush_program() -> tet_isa::Program {
        let mut a = Asm::new();
        for i in 0..256u64 {
            a.clflush_abs(PROBE_ARRAY + i * 4096);
        }
        a.halt();
        a.assemble().expect("flush program is closed")
    }

    fn transient_program(addr: u64) -> (tet_isa::Program, usize) {
        let mut a = Asm::new();
        a.load_byte_abs(Reg::Rax, addr) // faulting load
            .shl(Reg::Rax, 12u64) // secret * 4096
            .load_addr(
                Reg::R10,
                tet_isa::Addr::base_disp(Reg::Rax, PROBE_ARRAY as i64),
            );
        let handler = a.here();
        a.halt();
        (a.assemble().expect("transient program is closed"), handler)
    }

    fn reload_program(candidate: u64) -> tet_isa::Program {
        let mut a = Asm::new();
        a.rdtsc()
            .mov_reg(Reg::R8, Reg::Rax)
            .lfence()
            .load_abs(Reg::R10, PROBE_ARRAY + candidate * 4096)
            .lfence()
            .rdtsc()
            .sub(Reg::Rax, Reg::R8)
            .halt();
        a.assemble().expect("reload program is closed")
    }

    /// Leaks one kernel byte via Flush+Reload.
    pub fn leak_byte(&self, machine: &mut Machine, addr: u64) -> LeakedByte {
        let mut cycles = 0u64;

        // Warm-up transient access: Meltdown only forwards *cached*
        // data, and the faulting access itself initiates the fill — the
        // classic first-try-fails, retry-succeeds behaviour.
        let (warm, warm_handler) = Self::transient_program(addr);
        let r = machine.run(
            &warm,
            &RunConfig {
                handler_pc: Some(warm_handler),
                ..RunConfig::default()
            },
        );
        cycles += r.cycles;

        // Flush.
        let flush = Self::flush_program();
        let r = machine.run(&flush, &RunConfig::default());
        cycles += r.cycles;

        // Transient access (speculatively pulls probe[secret] in).
        let (transient, handler) = Self::transient_program(addr);
        let r = machine.run(
            &transient,
            &RunConfig {
                handler_pc: Some(handler),
                ..RunConfig::default()
            },
        );
        cycles += r.cycles;

        // Reload.
        let mut votes = vec![0u32; 256];
        let mut best = (u64::MAX, 0u8);
        for candidate in 0..256u64 {
            let r = machine.run(&Self::reload_program(candidate), &RunConfig::default());
            cycles += r.cycles;
            if r.exit != RunExit::Halted {
                continue;
            }
            let lat = r.regs.get(Reg::Rax);
            if lat < self.hit_threshold {
                votes[candidate as usize] += 1;
            }
            if lat < best.0 {
                best = (lat, candidate as u8);
            }
        }
        LeakedByte {
            value: best.1,
            votes,
            cycles,
        }
    }

    /// Leaks `len` consecutive kernel bytes.
    pub fn leak(&self, machine: &mut Machine, addr: u64, len: usize) -> LeakReport {
        let freq = machine.config().freq_ghz;
        let mut recovered = Vec::with_capacity(len);
        let mut cycles = 0u64;
        for i in 0..len {
            let b = self.leak_byte(machine, addr + i as u64);
            recovered.push(b.value);
            cycles += b.cycles;
        }
        LeakReport::new(recovered, cycles, freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    #[test]
    fn flush_reload_leaks_on_vulnerable_core() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        FlushReloadMeltdown::prepare(&mut sc.machine);
        let report = FlushReloadMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
        assert_eq!(report.recovered, b"WHIS");
    }

    #[test]
    fn flush_reload_fails_on_fixed_core() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions::default(),
        );
        FlushReloadMeltdown::prepare(&mut sc.machine);
        let report = FlushReloadMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
        assert!(!report.succeeded(b"WHIS"));
    }

    #[test]
    fn flush_reload_burns_hundreds_of_clflushes_per_byte() {
        use tet_pmu::Event;
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        FlushReloadMeltdown::prepare(&mut sc.machine);
        let before = sc.machine.cpu().pmu.snapshot();
        let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
        let delta = sc.machine.cpu().pmu.snapshot().delta(&before);
        assert!(
            delta.count(Event::ClflushExecuted) >= 256,
            "F+R must flush the whole probe array"
        );
    }
}
