//! Divergence-aware trial batching: the fixed-point probe memo behind
//! the `TET_BATCH` fast path.
//!
//! Every TET decode sweeps a test value 0..=255 through the same gadget
//! on the same machine. After warm-up the machine sits at a **fixed
//! point**: each non-matching probe returns the machine to exactly the
//! state it started from and reports exactly the same (ToTE, cycles)
//! pair — the sweep's information content is solely *which* test value
//! diverges. [`ProbeMemo`] exploits that: it measures probes live until
//! two consecutive non-matching probes agree on both their result and
//! their full [`RunDelta`] (cycles, fast-forward stats and all 51 PMU
//! counters), then *replays* the recorded effects for later
//! non-matching probes instead of simulating them
//! ([`tet_uarch::Machine::apply_replayed_run`]).
//!
//! Correctness is defended on four fronts:
//!
//! * the **match hint** — the one test value expected to take the
//!   in-window branch, predicted by
//!   [`tet_uarch::Machine::peek_transient_byte`] — is always probed
//!   live, as is the probe right after it (the pipeline re-converges
//!   one probe later);
//! * establishment needs two consecutive live probes with identical
//!   results *and* identical deltas — identical outright for
//!   jitter-free probes, identical **net of the draw** for probes that
//!   consume exactly one DRAM-jitter draw per run (the [`JitterShift`]
//!   fixed point; replays then re-draw from the machine's own stream
//!   so the RNG position stays exactly live-equivalent);
//! * every [`VERIFY_EVERY`]-th would-be skip runs live and is compared
//!   against the fixed record — any mismatch **poisons** the memo
//!   (every later probe runs live);
//! * batching disables itself entirely under the retirement oracle
//!   (check mode / `tet_check`), under timer-interrupt noise, when no
//!   hint is available, or when `TET_BATCH=0` ([`batch_enabled`]).
//!
//! Replayed probes return the recorded result and advance every
//! machine lifetime counter exactly as the live run would have, so
//! batched and unbatched sweeps are byte-identical — in decoded
//! output, cycle totals, run counts and PMU lifetime counters.

use tet_uarch::{DeltaMarker, Machine, RunDelta};

/// Process-wide batching default: `TET_BATCH=0` turns replay off
/// (every probe then simulates live).
pub fn batch_default() -> bool {
    static BATCH: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *BATCH.get_or_init(|| tet_obs::env_flag("TET_BATCH", true))
}

/// Whether trial batching may be used on `machine` right now: the
/// process default allows it, the machine is not under the retirement
/// oracle, and no timer-interrupt noise is configured (interrupts make
/// probe timing phase-dependent, so there is no fixed point).
pub fn batch_enabled(machine: &Machine) -> bool {
    batch_default()
        && !machine.check_mode()
        && !tet_check::enabled()
        && machine.config().timing.interrupt_period == 0
}

/// Live probes between sampled verifications: every `VERIFY_EVERY`-th
/// probe that *could* be skipped runs live instead and is checked
/// against the fixed record.
pub const VERIFY_EVERY: u32 = 16;

/// Probe results that shift linearly with DRAM jitter.
///
/// A probe whose only memory-system randomness is a **single** DRAM
/// access still has a fixed point *net of jitter*: the draw `j` delays
/// the access's completion, and with nothing else in flight the delay
/// passes straight through — total cycles, fast-forwarded cycles and
/// the measured ToTE all move by exactly `j` while every other counter
/// is unchanged. `jitter_shift` applies that uniform time shift to a
/// recorded result so a replayed probe can reconstruct what a live run
/// at the *current* stream position would have returned.
pub trait JitterShift {
    /// Returns this result shifted by `d` jitter cycles (`d` may be
    /// negative when normalising against a record with a larger draw).
    fn jitter_shift(&self, d: i64) -> Self;
}

impl JitterShift for u64 {
    fn jitter_shift(&self, d: i64) -> Self {
        self.wrapping_add_signed(d)
    }
}

impl JitterShift for (u64, u64) {
    fn jitter_shift(&self, d: i64) -> Self {
        (self.0.wrapping_add_signed(d), self.1.wrapping_add_signed(d))
    }
}

impl<T: JitterShift> JitterShift for Option<T> {
    fn jitter_shift(&self, d: i64) -> Self {
        self.as_ref().map(|v| v.jitter_shift(d))
    }
}

/// Learns the per-counter jitter response from two observations of the
/// same single-draw probe: every counter must move by `0` or by exactly
/// `d0 = b.jitter_sum − a.jitter_sum` — a pure event count vs. a
/// cycle-denominated counter that absorbs the whole time shift. The
/// returned "unit" reuses the [`RunDelta`] shape with `0`/`1` entries
/// (`jitter_sum` is `1` by construction); `None` means the pair is not
/// jitter-linear and no fixed point exists.
fn learn_unit(a: &RunDelta, b: &RunDelta) -> Option<RunDelta> {
    if a.jitter_draws != 1 || b.jitter_draws != 1 {
        return None;
    }
    let d0 = b.jitter_sum as i64 - a.jitter_sum as i64;
    if d0 == 0 {
        // Equal draws can't distinguish responsive counters from flat
        // ones — wait for a pair that actually differs.
        return None;
    }
    if a.runs != b.runs || a.ff_sprints != b.ff_sprints || a.restores != b.restores {
        return None;
    }
    let bit = |x: u64, y: u64| -> Option<u64> {
        match y as i64 - x as i64 {
            0 => Some(0),
            d if d == d0 => Some(1),
            _ => None,
        }
    };
    Some(RunDelta {
        runs: 0,
        cycles: bit(a.cycles, b.cycles)?,
        ff_skipped: bit(a.ff_skipped, b.ff_skipped)?,
        ff_sprints: 0,
        restores: 0,
        jitter_draws: 0,
        jitter_sum: 1,
        pmu: a.pmu.unit_shift(&b.pmu, d0)?,
    })
}

/// `base + d × unit` — the delta a live run shifted by `d` jitter
/// cycles would have produced.
fn apply_unit(base: &RunDelta, unit: &RunDelta, d: i64) -> RunDelta {
    RunDelta {
        runs: base.runs,
        cycles: base.cycles.wrapping_add_signed(d * unit.cycles as i64),
        ff_skipped: base
            .ff_skipped
            .wrapping_add_signed(d * unit.ff_skipped as i64),
        ff_sprints: base.ff_sprints,
        restores: base.restores,
        jitter_draws: base.jitter_draws,
        jitter_sum: base.jitter_sum.wrapping_add_signed(d),
        pmu: base.pmu.add_scaled(&unit.pmu, d),
    }
}

/// One probe's recorded fixed-point behaviour: the result the probe
/// closure returned plus everything the probe added to the machine's
/// lifetime counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedRec<R> {
    /// The recorded probe result.
    pub result: R,
    /// The recorded machine-counter movement.
    pub delta: RunDelta,
    /// The learned per-counter jitter response ([`learn_unit`]):
    /// `None` for jitter-free probes (which must match outright),
    /// `Some` for single-draw probes (which match net of the uniform
    /// `d = j_live − j_recorded` shift of every responsive counter).
    pub unit: Option<RunDelta>,
}

impl<R: Clone + PartialEq + JitterShift> FixedRec<R> {
    /// Whether a live observation is equivalent to this record.
    ///
    /// Jitter-free records demand equality outright. Single-draw
    /// records demand that the live delta equal `base + d × unit` and
    /// the live result equal the recorded one time-shifted by `d` —
    /// establishment across two *different* draws thereby doubles as
    /// an empirical check that the draw really does pass through the
    /// probe linearly. Probes with two or more draws per run never
    /// establish: overlapping accesses could interact non-linearly,
    /// and a replay could not reproduce the recorded sum anyway.
    fn matches(&self, result: &R, delta: &RunDelta) -> bool {
        match &self.unit {
            None => *result == self.result && *delta == self.delta,
            Some(unit) => {
                if delta.jitter_draws != self.delta.jitter_draws {
                    return false;
                }
                let d = delta.jitter_sum as i64 - self.delta.jitter_sum as i64;
                *delta == apply_unit(&self.delta, unit, d) && *result == self.result.jitter_shift(d)
            }
        }
    }

    /// Result-only equivalence, for the re-convergence probe right
    /// after the hint: its *timing tail* may legitimately differ, so
    /// only the (jitter-normalised) result is compared.
    fn matches_result(&self, result: &R, delta: &RunDelta) -> bool {
        match &self.unit {
            None => *result == self.result,
            Some(_) => {
                if delta.jitter_draws != self.delta.jitter_draws {
                    return false;
                }
                let d = delta.jitter_sum as i64 - self.delta.jitter_sum as i64;
                *result == self.result.jitter_shift(d)
            }
        }
    }

    /// Tries to establish a fixed point from this candidate and a
    /// fresh live observation. A seeded candidate (unit already
    /// learned by a sibling trial) just needs one confirming match; a
    /// fresh candidate needs the new observation to be exactly equal
    /// (jitter-free probes) or jitter-linear against it (single-draw
    /// probes, learning the unit in the process).
    fn establish(&self, result: &R, delta: &RunDelta) -> Option<FixedRec<R>> {
        if self.unit.is_some() {
            return self.matches(result, delta).then(|| self.clone());
        }
        if self.delta.jitter_draws == 0 {
            return (*result == self.result && *delta == self.delta).then(|| self.clone());
        }
        let unit = learn_unit(&self.delta, delta)?;
        let d0 = delta.jitter_sum as i64 - self.delta.jitter_sum as i64;
        (*result == self.result.jitter_shift(d0)).then(|| FixedRec {
            result: self.result.clone(),
            delta: self.delta.clone(),
            unit: Some(unit),
        })
    }
}

#[derive(Debug)]
enum MemoState<R> {
    /// No live probe observed yet.
    Empty,
    /// One live observation (or an unconfirmed cross-trial seed);
    /// awaiting a matching second observation.
    Candidate(FixedRec<R>),
    /// Fixed point established: non-matching probes may be replayed.
    Fixed(FixedRec<R>),
    /// A verification failed; everything runs live from here on.
    Poisoned,
}

/// The per-sweep memoizer. Create one per decode loop (after warm-up),
/// with the gadget's match hint; wrap each probe in
/// [`ProbeMemo::probe`] — or [`ProbeMemo::try_skip`] /
/// [`ProbeMemo::record`] when the live probe needs more context than a
/// `&mut Machine` closure can carry.
#[derive(Debug)]
pub struct ProbeMemo<R> {
    state: MemoState<R>,
    /// The test value predicted to take the in-window branch — always
    /// probed live.
    hint: Option<u64>,
    enabled: bool,
    /// Set after the hint probe ran: the next probe re-converges the
    /// pipeline, so it runs live and only its *result* is checked.
    diverged: bool,
    /// Skips since the last sampled verification.
    skips: u32,
    /// The in-flight live probe is a sampled verification.
    pending_verify: bool,
}

impl<R: Clone + PartialEq + JitterShift> ProbeMemo<R> {
    /// A fresh memo. `hint` is the test value expected to diverge
    /// (`None` disables batching — without a prediction any probe
    /// might be the signal, so none can be skipped).
    pub fn new(machine: &Machine, hint: Option<u64>) -> Self {
        Self::seeded(machine, hint, None)
    }

    /// A memo seeded with a fixed record established by an earlier
    /// trial of the *same* snapshot-forked sweep. The seed enters as a
    /// candidate, not as fixed: the first live probe must reproduce it
    /// before any skipping starts, so a stale or foreign seed costs
    /// one probe and establishes normally instead of corrupting the
    /// sweep.
    pub fn seeded(machine: &Machine, hint: Option<u64>, seed: Option<FixedRec<R>>) -> Self {
        let enabled = hint.is_some() && batch_enabled(machine);
        ProbeMemo {
            state: match seed {
                Some(rec) if enabled => MemoState::Candidate(rec),
                _ => MemoState::Empty,
            },
            hint,
            enabled,
            diverged: false,
            skips: 0,
            pending_verify: false,
        }
    }

    /// The memo's state name, for diagnostics.
    pub fn state_name(&self) -> &'static str {
        match &self.state {
            MemoState::Empty => "empty",
            MemoState::Candidate(_) => "candidate",
            MemoState::Fixed(_) => "fixed",
            MemoState::Poisoned => "poisoned",
        }
    }

    /// The established fixed record, if any — for seeding sibling
    /// trials of the same sweep.
    pub fn fixed(&self) -> Option<&FixedRec<R>> {
        match &self.state {
            MemoState::Fixed(rec) => Some(rec),
            _ => None,
        }
    }

    /// Runs one probe through the memo: replays it if it is proven
    /// fixed, otherwise runs `f` live and feeds the observation back.
    pub fn probe(
        &mut self,
        machine: &mut Machine,
        test: u64,
        f: impl FnOnce(&mut Machine) -> R,
    ) -> R {
        if let Some(r) = self.try_skip(machine, test) {
            return r;
        }
        let marker = machine.delta_marker();
        let r = f(machine);
        self.record(machine, &marker, test, &r);
        r
    }

    /// Replays the probe for `test` if it is proven fixed: applies the
    /// recorded counter movement to `machine` and returns the recorded
    /// result. Returns `None` when the probe must run live — then take
    /// a [`tet_uarch::Machine::delta_marker`], run it, and call
    /// [`ProbeMemo::record`].
    pub fn try_skip(&mut self, machine: &mut Machine, test: u64) -> Option<R> {
        if !self.enabled || self.diverged || self.hint == Some(test) {
            return None;
        }
        let MemoState::Fixed(rec) = &self.state else {
            return None;
        };
        self.skips += 1;
        if self.skips >= VERIFY_EVERY {
            // Sampled verification: run this one live and compare.
            self.skips = 0;
            self.pending_verify = true;
            return None;
        }
        let rec = rec.clone();
        match &rec.unit {
            None => {
                machine.apply_replayed_run(&rec.delta);
                Some(rec.result)
            }
            Some(unit) => {
                // A single-jitter-draw record replays at the *current*
                // stream position: draw what the live run would have
                // drawn (advancing the RNG identically) and shift every
                // responsive counter by the difference.
                let j = machine.replay_dram_jitter(rec.delta.jitter_draws);
                let d = j as i64 - rec.delta.jitter_sum as i64;
                machine.apply_replayed_run(&apply_unit(&rec.delta, unit, d));
                Some(rec.result.jitter_shift(d))
            }
        }
    }

    /// Feeds a live probe's observation back into the memo. `marker`
    /// must have been taken immediately before the probe ran.
    pub fn record(&mut self, machine: &Machine, marker: &DeltaMarker, test: u64, result: &R) {
        if !self.enabled {
            return;
        }
        let delta = machine.delta_since(marker);
        if self.hint == Some(test) {
            // The predicted divergence: its timing IS the signal. The
            // machine re-converges one probe later, so flag the next
            // probe for a result-only check.
            self.diverged = true;
            return;
        }
        if std::mem::take(&mut self.pending_verify) {
            if let MemoState::Fixed(rec) = &self.state {
                if !rec.matches(result, &delta) {
                    self.state = MemoState::Poisoned;
                }
            }
            return;
        }
        if std::mem::take(&mut self.diverged) {
            // First probe after the divergent one: its own timing may
            // carry the tail of the disturbance, so only the
            // (jitter-normalised) result is checked and the probe is
            // never recorded. A matching result does NOT prove the old
            // record still holds, though — the matched probe can leave
            // trained-predictor state behind (its taken in-window Jcc
            // installs a BTB entry, giving every later probe one extra
            // BTB hit), moving the machine to a *new* fixed point with
            // identical timing but shifted PMU counts. Demote the
            // record to candidate: skipping resumes only after it
            // re-establishes against post-divergence observations.
            self.state = match std::mem::replace(&mut self.state, MemoState::Poisoned) {
                MemoState::Fixed(rec) => {
                    if rec.matches_result(result, &delta) {
                        MemoState::Candidate(rec)
                    } else {
                        MemoState::Poisoned
                    }
                }
                other => other,
            };
            return;
        }
        self.state = match std::mem::replace(&mut self.state, MemoState::Poisoned) {
            MemoState::Empty => MemoState::Candidate(FixedRec {
                result: result.clone(),
                delta,
                unit: None,
            }),
            MemoState::Candidate(c) => {
                if let Some(fixed) = c.establish(result, &delta) {
                    MemoState::Fixed(fixed)
                } else {
                    // Not settled yet (or a stale seed): this
                    // observation becomes the new candidate.
                    MemoState::Candidate(FixedRec {
                        result: result.clone(),
                        delta,
                        unit: None,
                    })
                }
            }
            MemoState::Fixed(rec) => {
                // A live probe the caller chose to run anyway: treat
                // it as a free verification.
                if rec.matches(result, &delta) {
                    MemoState::Fixed(rec)
                } else {
                    MemoState::Poisoned
                }
            }
            MemoState::Poisoned => MemoState::Poisoned,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_uarch::CpuConfig;

    fn run_delta(cycles: u64) -> RunDelta {
        RunDelta {
            runs: 1,
            cycles,
            ff_skipped: 0,
            ff_sprints: 0,
            restores: 0,
            jitter_draws: 0,
            jitter_sum: 0,
            pmu: tet_pmu::PmuSnapshot::zero(),
        }
    }

    /// Drives the memo against a synthetic probe function; returns
    /// (results, live_count).
    fn sweep(
        memo: &mut ProbeMemo<u64>,
        machine: &mut Machine,
        f: impl Fn(u64) -> u64,
    ) -> (Vec<u64>, u32) {
        let mut live = 0;
        let mut out = Vec::new();
        for test in 0..=255u64 {
            let r = memo.probe(machine, test, |_| {
                live += 1;
                f(test)
            });
            out.push(r);
        }
        (out, live)
    }

    #[test]
    fn establishes_and_skips_nonmatching_probes() {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        let mut memo: ProbeMemo<u64> = ProbeMemo::new(&m, Some(77));
        if !batch_enabled(&m) {
            return; // TET_BATCH=0 in the environment: nothing to test
        }
        let (out, live) = sweep(&mut memo, &mut m, |t| if t == 77 { 999 } else { 204 });
        let want: Vec<u64> = (0..=255u64)
            .map(|t| if t == 77 { 999 } else { 204 })
            .collect();
        assert_eq!(out, want, "replayed sweep must be value-identical");
        // 2 establishment + hint + post-hint + ~16 sampled verifies.
        assert!(live < 30, "expected most probes replayed, got {live} live");
        assert!(memo.fixed().is_some());
    }

    #[test]
    fn hint_and_reconvergence_probe_always_run_live() {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        if !batch_enabled(&m) {
            return;
        }
        let mut memo: ProbeMemo<u64> = ProbeMemo::new(&m, Some(10));
        let mut live_tests = Vec::new();
        for test in 0..=40u64 {
            memo.probe(&mut m, test, |_| {
                live_tests.push(test);
                // The match probe returns a different value; the
                // re-convergence probe (test 11) returns the fixed
                // value again, its timing tail tolerated.
                if test == 10 {
                    999
                } else {
                    204
                }
            });
        }
        assert!(live_tests.contains(&10), "hint probe must be live");
        assert!(
            live_tests.contains(&11),
            "re-convergence probe must be live"
        );
        assert!(memo.fixed().is_some(), "tolerated tail must not poison");
    }

    #[test]
    fn sampled_verification_poisons_on_drift() {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        if !batch_enabled(&m) {
            return;
        }
        let mut memo: ProbeMemo<u64> = ProbeMemo::new(&m, Some(1000)); // hint never hit
        let mut live = 0u32;
        let mut out = Vec::new();
        for test in 0..=255u64 {
            out.push(memo.probe(&mut m, test, |_| {
                live += 1;
                // The "fixed" value drifts at probe 100 — only a later
                // sampled verification can see it.
                if test < 100 {
                    204
                } else {
                    205
                }
            }));
        }
        assert!(memo.fixed().is_none(), "drift must poison the memo");
        // After poisoning, everything runs live again.
        let tail_live = live;
        memo.probe(&mut m, 300, |_| {
            live += 1;
            205
        });
        assert_eq!(live, tail_live + 1, "poisoned memo must not skip");
        // Replayed probes returned the stale value between the drift
        // and the verification that caught it — bounded by the
        // verification cadence.
        let stale = out[100..].iter().filter(|&&v| v == 204).count();
        assert!(
            stale <= VERIFY_EVERY as usize,
            "stale window must be bounded by the verify cadence, got {stale}"
        );
    }

    #[test]
    fn seeded_memo_confirms_before_skipping() {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        if !batch_enabled(&m) {
            return;
        }
        let seed = FixedRec {
            result: 204u64,
            delta: run_delta(10),
            unit: None,
        };
        let mut memo = ProbeMemo::seeded(&m, Some(1000), Some(seed));
        let mut live = 0u32;
        // First probe must run live (the seed is only a candidate)...
        memo.probe(&mut m, 0, |_| {
            live += 1;
            204
        });
        assert_eq!(live, 1);
        // ...but a foreign delta fails confirmation, so the next probe
        // is still live rather than replayed from the bad seed.
        memo.probe(&mut m, 1, |_| {
            live += 1;
            204
        });
        assert_eq!(live, 2, "unconfirmed seed must not permit skips");
    }

    #[test]
    fn disabled_memo_is_transparent() {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        let mut memo: ProbeMemo<u64> = ProbeMemo::new(&m, None); // no hint
        let mut live = 0u32;
        for test in 0..=255u64 {
            memo.probe(&mut m, test, |_| {
                live += 1;
                204
            });
        }
        assert_eq!(live, 256, "hintless memo must never skip");
    }

    #[test]
    fn replay_advances_lifetime_counters_exactly() {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        let before = m.stats();
        let delta = RunDelta {
            runs: 2,
            cycles: 500,
            ff_skipped: 120,
            ff_sprints: 3,
            restores: 1,
            jitter_draws: 0,
            jitter_sum: 0,
            pmu: tet_pmu::PmuSnapshot::zero(),
        };
        m.apply_replayed_run(&delta);
        let after = m.stats();
        assert_eq!(after.runs, before.runs + 2);
        assert_eq!(after.sim_cycles, before.sim_cycles + 500);
        assert_eq!(after.ff_skipped_cycles, before.ff_skipped_cycles + 120);
        assert_eq!(after.ff_sprints, before.ff_sprints + 3);
        assert_eq!(after.snapshot_restores, before.snapshot_restores + 1);
    }
}
