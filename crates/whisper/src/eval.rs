//! Shared evaluation harness: the Table 2 attack matrix.
//!
//! Runs each of the five attacks against one CPU preset with fresh
//! scenarios and reports ✓/✗, so the benchmark binaries and the
//! integration tests agree on what "the attack works" means:
//! a majority of the secret bytes recovered (leaks), a decoded bit
//! pattern (covert channels), or the exact base found (KASLR).

use tet_metrics::ProfHandle;
use tet_pmu::Event;
use tet_uarch::CpuConfig;

use crate::attacks::{TetKaslr, TetMeltdown, TetSpectreRsb, TetZombieload};
use crate::channel::TetCovertChannel;
use crate::scenario::{Scenario, ScenarioOptions};

/// One attack's outcome on one CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStatus {
    /// The attack recovered the secret (✓ in Table 2).
    Success,
    /// The attack ran but recovered garbage (✗ in Table 2).
    Fail,
}

impl std::fmt::Display for AttackStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackStatus::Success => f.write_str("ok"),
            AttackStatus::Fail => f.write_str("FAIL"),
        }
    }
}

/// The five per-attack outcomes for one CPU model (one Table 2 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// CPU marketing name.
    pub cpu: &'static str,
    /// Microarchitecture.
    pub uarch: &'static str,
    /// TET covert channel.
    pub cc: AttackStatus,
    /// TET-Meltdown.
    pub md: AttackStatus,
    /// TET-Zombieload.
    pub zbl: AttackStatus,
    /// TET-Spectre-RSB.
    pub rsb: AttackStatus,
    /// TET-KASLR.
    pub kaslr: AttackStatus,
}

fn status(ok: bool) -> AttackStatus {
    if ok {
        AttackStatus::Success
    } else {
        AttackStatus::Fail
    }
}

/// The five Table 2 attack columns, in paper order. Index `k` here is the
/// `attack` argument of [`run_table2_cell`].
pub const TABLE2_ATTACKS: [&str; 5] = ["cc", "md", "zbl", "rsb", "kaslr"];

/// Simulator-cost counters of one Table 2 cell (or a sum over cells):
/// the raw data behind `table2.ns_per_trial` and the fast-forward /
/// snapshot scalars in `BENCH_core.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Simulator runs (trials) executed.
    pub runs: u64,
    /// Simulated cycles across those runs.
    pub sim_cycles: u64,
    /// Cycles covered by event-driven fast-forward instead of stepping.
    pub ff_skipped_cycles: u64,
    /// Fast-forward sprints taken.
    pub ff_sprints: u64,
    /// Machine-snapshot restores applied.
    pub snapshot_restores: u64,
    /// Retired loads that hit the L1D (PMU `MEM_LOAD_RETIRED.L1_HIT`).
    pub l1_hits: u64,
    /// Retired loads that missed the L1D (PMU `MEM_LOAD_RETIRED.L1_MISS`).
    pub l1_misses: u64,
    /// DTLB load misses that walked the page tables.
    pub dtlb_walks: u64,
    /// Retired branches (PMU `BR_INST_RETIRED.ALL_BRANCHES`).
    pub branches: u64,
    /// Retired mispredicted branches.
    pub br_mispredicts: u64,
}

impl CellStats {
    /// Adds one machine's lifetime counters into this sum.
    pub fn absorb(&mut self, s: tet_uarch::MachineStats) {
        self.runs += s.runs;
        self.sim_cycles += s.sim_cycles;
        self.ff_skipped_cycles += s.ff_skipped_cycles;
        self.ff_sprints += s.ff_sprints;
        self.snapshot_restores += s.snapshot_restores;
    }

    /// Adds one machine's lifetime PMU totals into this sum. These are
    /// *simulated* events — deterministic per `(cfg, seed, attack)` —
    /// so `CellStats` stays `Eq` and safe to compare across runs.
    pub fn absorb_pmu(&mut self, pmu: &tet_pmu::PmuSnapshot) {
        self.l1_hits += pmu.count(Event::MemLoadRetiredL1Hit);
        self.l1_misses += pmu.count(Event::MemLoadRetiredL1Miss);
        self.dtlb_walks += pmu.count(Event::DtlbLoadMissesMissCausesAWalk);
        self.branches += pmu.count(Event::BrInstRetiredAll);
        self.br_mispredicts += pmu.count(Event::BrMispRetiredAll);
    }

    /// Adds another sum into this one.
    pub fn merge(&mut self, other: &CellStats) {
        self.runs += other.runs;
        self.sim_cycles += other.sim_cycles;
        self.ff_skipped_cycles += other.ff_skipped_cycles;
        self.ff_sprints += other.ff_sprints;
        self.snapshot_restores += other.snapshot_restores;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.dtlb_walks += other.dtlb_walks;
        self.branches += other.branches;
        self.br_mispredicts += other.br_mispredicts;
    }
}

/// Runs one Table 2 cell: attack column `attack` (index into
/// [`TABLE2_ATTACKS`]) on one preset, from a fresh scenario.
///
/// Each cell builds its own [`Scenario`] from `(cfg, seed)` and shares no
/// state with any other cell, which is what makes the matrix an
/// embarrassingly-parallel fan-out (see [`run_table2_matrix`]).
pub fn run_table2_cell(cfg: &CpuConfig, seed: u64, attack: usize) -> AttackStatus {
    run_table2_cell_detailed(cfg, seed, attack).0
}

/// [`run_table2_cell`] plus the cell's simulator-cost counters.
pub fn run_table2_cell_detailed(
    cfg: &CpuConfig,
    seed: u64,
    attack: usize,
) -> (AttackStatus, CellStats) {
    run_table2_cell_instrumented(cfg, seed, attack, &ProfHandle::disabled())
}

/// [`run_table2_cell_detailed`] with a host profiler installed on the
/// cell's machine. The profiler only accumulates host wall-time on the
/// side (see `tet-metrics`); pass [`ProfHandle::disabled`] for the
/// plain path — the simulated outcome is identical either way.
pub fn run_table2_cell_instrumented(
    cfg: &CpuConfig,
    seed: u64,
    attack: usize,
    prof: &ProfHandle,
) -> (AttackStatus, CellStats) {
    let opts = ScenarioOptions {
        seed,
        ..ScenarioOptions::default()
    };
    run_table2_cell_opts(cfg, &opts, attack, prof)
}

/// The fully-general cell entry point: one attack on one preset with an
/// arbitrary [`ScenarioOptions`] (KPTI, FLARE, timer-interrupt noise,
/// container environment). This is what a campaign scheduler calls —
/// every other `run_table2_cell*` variant is a specialization.
pub fn run_table2_cell_opts(
    cfg: &CpuConfig,
    opts: &ScenarioOptions,
    attack: usize,
    prof: &ProfHandle,
) -> (AttackStatus, CellStats) {
    let mut sc = Scenario::new(cfg.clone(), opts);
    if prof.enabled() {
        sc.machine.set_profiler(prof.clone());
    }
    let status = run_attack_on(&mut sc, attack);
    let mut stats = CellStats::default();
    stats.absorb(sc.machine.stats());
    stats.absorb_pmu(sc.machine.pmu_lifetime());
    (status, stats)
}

fn run_attack_on(sc: &mut Scenario, attack: usize) -> AttackStatus {
    match attack {
        // TET-CC: one byte through the covert channel.
        0 => {
            sc.sender_write(0xa5);
            let (got, _) = TetCovertChannel::new(2).receive_byte(sc);
            status(got == 0xa5)
        }
        // TET-MD: four kernel bytes.
        1 => {
            let r = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
            status(r.recovered == b"WHIS")
        }
        // TET-ZBL: four victim bytes through the fill buffers.
        2 => {
            for (i, b) in b"LFB!".iter().enumerate() {
                sc.set_victim_byte(i as u64, *b);
            }
            let r = TetZombieload::default().sample(sc, 4);
            status(r.recovered == b"LFB!")
        }
        // TET-RSB: two in-process bytes through the return stack buffer.
        3 => {
            let r = TetSpectreRsb::default().leak(&mut sc.machine, sc.user_secret_va, 2);
            status(r.recovered == b"rs")
        }
        // TET-KASLR: recover the randomized base.
        4 => {
            let r = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
            status(r.success)
        }
        _ => panic!(
            "attack index {attack} out of range (0..{})",
            TABLE2_ATTACKS.len()
        ),
    }
}

fn row_from_cells(cfg: &CpuConfig, cells: &[AttackStatus]) -> Table2Row {
    Table2Row {
        cpu: cfg.name,
        uarch: cfg.uarch,
        cc: cells[0],
        md: cells[1],
        zbl: cells[2],
        rsb: cells[3],
        kaslr: cells[4],
    }
}

/// Runs all five attacks on one preset and returns the row.
///
/// `seed` controls KASLR placement and jitter; the secrets are fixed
/// short strings so a row completes in a few seconds of host time.
pub fn run_table2_row(cfg: &CpuConfig, seed: u64) -> Table2Row {
    let cells: Vec<AttackStatus> = (0..TABLE2_ATTACKS.len())
        .map(|k| run_table2_cell(cfg, seed, k))
        .collect();
    row_from_cells(cfg, &cells)
}

/// Runs the full Table 2 matrix (every preset × every attack) on up to
/// `threads` worker threads and returns the rows in preset order.
///
/// The parallel unit is the *cell*: `presets.len() × 5` independent
/// simulator runs fanned out via [`tet_par::run_indexed`], so the result
/// is byte-identical to the serial matrix for any thread count.
pub fn run_table2_matrix(seed: u64, threads: usize) -> Vec<Table2Row> {
    run_table2_matrix_detailed(seed, threads).0
}

/// [`run_table2_matrix`] plus the summed simulator-cost counters of all
/// cells — what `bench_core` divides wall time by to get
/// `table2.ns_per_trial`.
pub fn run_table2_matrix_detailed(seed: u64, threads: usize) -> (Vec<Table2Row>, CellStats) {
    run_table2_matrix_observed(seed, threads, &ProfHandle::disabled(), |_, _| {})
}

/// [`run_table2_matrix_detailed`] with live telemetry hooks: installs
/// `prof` on every cell's machine and calls `observe(cell_index,
/// &cell_stats)` on the worker thread as each cell completes (completion
/// order — see [`tet_par::run_indexed_observed`]).
///
/// The observer is telemetry-only (flight recorders, stderr dashboards):
/// results are committed before it runs, so the returned rows and summed
/// stats are byte-identical to [`run_table2_matrix_detailed`] for any
/// thread count, profiler, or observer.
pub fn run_table2_matrix_observed<O>(
    seed: u64,
    threads: usize,
    prof: &ProfHandle,
    observe: O,
) -> (Vec<Table2Row>, CellStats)
where
    O: Fn(usize, &CellStats) + Sync,
{
    let presets = CpuConfig::table2_presets();
    let n_attacks = TABLE2_ATTACKS.len();
    let cells = tet_par::run_indexed_observed(
        threads,
        presets.len() * n_attacks,
        || (),
        |(), i| run_table2_cell_instrumented(&presets[i / n_attacks], seed, i % n_attacks, prof),
        |i, (_, cs): &(AttackStatus, CellStats)| observe(i, cs),
    );
    let mut total = CellStats::default();
    let statuses: Vec<AttackStatus> = cells
        .iter()
        .map(|(st, cs)| {
            total.merge(cs);
            *st
        })
        .collect();
    let rows = presets
        .iter()
        .enumerate()
        .map(|(p, cfg)| row_from_cells(cfg, &statuses[p * n_attacks..(p + 1) * n_attacks]))
        .collect();
    (rows, total)
}

/// The paper's reported Table 2 row for a preset (`None` marks the
/// paper's "?" = not verified; those cells are not compared).
pub fn paper_table2_row(cpu: &str) -> [Option<AttackStatus>; 5] {
    use AttackStatus::{Fail, Success};
    match cpu {
        "Intel Core i7-6700" | "Intel Core i7-7700" => [
            Some(Success),
            Some(Success),
            Some(Success),
            Some(Success),
            Some(Success),
        ],
        "Intel Core i9-10980XE" => [Some(Success), Some(Fail), Some(Fail), None, Some(Success)],
        "Intel Core i9-13900K" => [Some(Success), Some(Fail), Some(Fail), Some(Success), None],
        "AMD Ryzen 5 5600G" => [Some(Success), Some(Fail), Some(Fail), None, Some(Fail)],
        _ => [None; 5],
    }
}

impl Table2Row {
    /// This row's outcomes in Table 2 column order
    /// (CC, MD, ZBL, RSB, KASLR).
    pub fn cells(&self) -> [AttackStatus; 5] {
        [self.cc, self.md, self.zbl, self.rsb, self.kaslr]
    }

    /// Whether every cell the paper *verified* matches ours.
    pub fn matches_paper(&self) -> bool {
        self.cells()
            .iter()
            .zip(paper_table2_row(self.cpu))
            .all(|(ours, paper)| paper.is_none_or(|p| p == *ours))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full-matrix comparison lives in `tests/table2.rs` (it is the
    // headline reproduction result); here we only check the harness
    // plumbing on the cheapest preset.
    #[test]
    fn row_reports_all_cells() {
        let row = run_table2_row(&CpuConfig::kaby_lake_i7_7700(), 3);
        assert_eq!(row.cpu, "Intel Core i7-7700");
        assert_eq!(row.cells().len(), 5);
    }

    #[test]
    fn parallel_matrix_matches_serial_rows() {
        // Cheap determinism smoke: the full cross-thread-count matrix
        // equivalence (3 seeds, threads 1 vs 8) lives in
        // `tests/determinism.rs`; here we pin one row on one preset.
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let serial = run_table2_row(&cfg, 7);
        let matrix = run_table2_matrix(7, 2);
        let row = matrix
            .iter()
            .find(|r| r.cpu == cfg.name)
            .expect("preset present");
        assert_eq!(*row, serial);
    }

    #[test]
    fn instrumented_cell_matches_plain_and_counts_pmu() {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let prof = tet_metrics::HostProfiler::new(8);
        let plain = run_table2_cell_detailed(&cfg, 3, 0);
        let inst = run_table2_cell_instrumented(&cfg, 3, 0, &prof.handle());
        assert_eq!(plain, inst, "profiler must not perturb the cell");
        assert!(inst.1.l1_hits > 0, "covert channel retires L1 hits");
        assert!(inst.1.dtlb_walks > 0, "covert channel walks the DTLB");
        assert!(
            prof.hits(tet_metrics::Stage::Run) > 0,
            "profiler saw the runs"
        );
    }

    #[test]
    fn paper_rows_cover_all_presets() {
        for cfg in CpuConfig::table2_presets() {
            assert!(
                paper_table2_row(cfg.name).iter().any(|c| c.is_some()),
                "no paper ground truth for {}",
                cfg.name
            );
        }
    }
}
