//! Persistent-state footprint measurements — the evidence behind
//! Table 1's classification of the TET attacks as *stateless* and
//! *transient-only*.
//!
//! A stateful channel (Flush+Reload) requires persistent µarch state
//! changes to carry the secret; a stateless channel does not. We measure
//! the footprint an attack leaves by fingerprinting caches, the BTB and
//! the DTLB around one leak iteration and counting the entries that
//! changed.

use tet_uarch::Machine;

/// Persistent-µarch-state change counts across an activity window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Cache lines (all levels) whose residency changed.
    pub cache_lines_changed: usize,
    /// BTB entries added or removed.
    pub btb_entries_changed: usize,
    /// DTLB entries added or removed.
    pub dtlb_entries_changed: usize,
    /// `clflush` instructions executed inside the window.
    pub clflushes: u64,
}

impl Footprint {
    /// A compact statefulness score: the total number of persistent
    /// entries the window disturbed.
    pub fn total_state_changes(&self) -> usize {
        self.cache_lines_changed + self.btb_entries_changed + self.dtlb_entries_changed
    }
}

fn set_diff<T: Ord + Clone>(a: &[T], b: &[T]) -> usize {
    use std::collections::BTreeSet;
    let sa: BTreeSet<_> = a.iter().cloned().collect();
    let sb: BTreeSet<_> = b.iter().cloned().collect();
    sa.symmetric_difference(&sb).count()
}

/// Runs `window` against the machine and reports the persistent-state
/// footprint it left behind.
pub fn measure_footprint<F>(machine: &mut Machine, window: F) -> Footprint
where
    F: FnOnce(&mut Machine),
{
    let caches_before = machine.mem().cache_fingerprint();
    let btb_before = machine.cpu().bpu().btb_fingerprint();
    let dtlb_before = machine.cpu().dtlb().fingerprint();
    let pmu_before = machine.cpu().pmu.snapshot();

    window(machine);

    let caches_after = machine.mem().cache_fingerprint();
    let btb_after = machine.cpu().bpu().btb_fingerprint();
    let dtlb_after = machine.cpu().dtlb().fingerprint();
    let pmu_after = machine.cpu().pmu.snapshot();

    let cache_lines_changed = caches_before
        .iter()
        .zip(&caches_after)
        .map(|(a, b)| set_diff(a, b))
        .sum();
    Footprint {
        cache_lines_changed,
        btb_entries_changed: set_diff(&btb_before, &btb_after),
        dtlb_entries_changed: set_diff(&dtlb_before, &dtlb_after),
        clflushes: pmu_after
            .delta(&pmu_before)
            .count(tet_pmu::Event::ClflushExecuted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::TetMeltdown;
    use crate::baseline::FlushReloadMeltdown;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    fn scenario() -> Scenario {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        FlushReloadMeltdown::prepare(&mut sc.machine);
        sc
    }

    #[test]
    fn empty_window_leaves_no_footprint() {
        let mut sc = scenario();
        let fp = measure_footprint(&mut sc.machine, |_| {});
        assert_eq!(fp.total_state_changes(), 0);
        assert_eq!(fp.clflushes, 0);
    }

    #[test]
    fn tet_leaves_almost_no_persistent_state_while_fr_churns() {
        // Steady-state both attacks first (warm code paths, train
        // predictors), then measure one steady-state leak iteration each.
        // Note that in steady state Flush+Reload *restores* much of the
        // cache set it churned (flush 256 → reload 256), so the honest
        // statefulness metrics are the flush count and the churn, not
        // just the before/after set difference.
        let mut sc = scenario();
        let secret = sc.kernel_secret_va;
        let _ = TetMeltdown::default().leak_byte(&mut sc.machine, secret);
        let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, secret);
        let _ = TetMeltdown::default().leak_byte(&mut sc.machine, secret);
        let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, secret);

        let tet = measure_footprint(&mut sc.machine, |m| {
            let _ = TetMeltdown::default().leak_byte(m, secret);
        });
        let fr = measure_footprint(&mut sc.machine, |m| {
            let _ = FlushReloadMeltdown::default().leak_byte(m, secret);
        });
        assert!(
            tet.total_state_changes() < 16,
            "TET must be near-stateless, changed {} entries",
            tet.total_state_changes()
        );
        assert_eq!(tet.clflushes, 0, "TET never flushes");
        assert!(fr.clflushes >= 256, "F+R flushes its whole probe array");
    }
}
