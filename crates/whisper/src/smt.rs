//! The SMT covert channel of §4.4.
//!
//! The sender (trojan) encodes a `1` by triggering a page fault it
//! suppresses with its signal handler — the fault's pipeline flush stalls
//! the whole physical core. The receiver (spy) times a `nop` loop on the
//! sibling thread; slow windows decode as `1`. The paper's prototype
//! reaches 1 B/s below 5 % error, and 268 KB/s at 28 % error with the
//! SecSMT-style evaluation settings.

use tet_isa::{Asm, Cond, Program, Reg};
use tet_uarch::{CpuConfig, RunConfig, SmtMachine};

use crate::analysis::error_rate;

/// Quality report of an SMT transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtChannelReport {
    /// Decoded bits.
    pub received: Vec<u8>,
    /// Bit error rate.
    pub bit_error_rate: f64,
    /// Total simulated cycles (max over the two threads, summed over
    /// bits).
    pub cycles: u64,
    /// Seconds at the model's frequency.
    pub seconds: f64,
    /// Effective throughput in bits per second.
    pub bits_per_sec: f64,
}

/// The SMT pipeline-flush covert channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtTetChannel {
    /// Spy `nop`-loop iterations per bit window. Large windows (the
    /// paper's 1 B/s prototype) are nearly error-free; small windows
    /// (the SecSMT-style fast mode) trade accuracy for speed.
    pub spy_iters: u64,
    /// Trojan faults per `1` bit.
    pub faults_per_bit: u64,
}

impl Default for SmtTetChannel {
    fn default() -> Self {
        SmtTetChannel {
            spy_iters: 256,
            faults_per_bit: 16,
        }
    }
}

impl SmtTetChannel {
    /// The slow, low-error prototype configuration.
    pub fn prototype() -> Self {
        Self::default()
    }

    /// The SecSMT-style fast configuration: tiny windows, high error.
    pub fn fast() -> Self {
        SmtTetChannel {
            spy_iters: 8,
            faults_per_bit: 1,
        }
    }

    fn spy_program(&self) -> Program {
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, self.spy_iters);
        a.bind(top)
            .nops(8)
            .sub(Reg::Rcx, 1u64)
            .jcc(Cond::Ne, top)
            .halt();
        a.assemble().expect("spy loop is closed")
    }

    /// Trojan program sending one bit, and the handler pc for fault
    /// suppression.
    fn trojan_program(&self, bit: bool) -> (Program, Option<usize>) {
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, self.faults_per_bit);
        a.bind(top);
        if bit {
            a.load_abs(Reg::Rax, 0xdead_0000); // fault, suppressed
        } else {
            a.mov_imm(Reg::Rax, 0); // quiet filler
        }
        let resume = a.here();
        a.sub(Reg::Rcx, 1u64).jcc(Cond::Ne, top).halt();
        (
            a.assemble().expect("trojan loop is closed"),
            bit.then_some(resume),
        )
    }

    /// Measures the spy window length with the trojan sending `bit`.
    /// Returns `(spy_cycles, pair_cycles)`.
    pub fn window(&self, smt: &mut SmtMachine, bit: bool) -> (u64, u64) {
        let spy = self.spy_program();
        let (trojan, handler) = self.trojan_program(bit);
        let r = smt.run(
            &trojan,
            &spy,
            &RunConfig {
                handler_pc: handler,
                ..RunConfig::default()
            },
            &RunConfig::default(),
        );
        let spy_cycles = r.t1.cycles;
        (spy_cycles, r.t0.cycles.max(r.t1.cycles))
    }

    /// Calibrates the 0/1 threshold by sounding both symbols several
    /// times (after discarded warm-up pairs) and splitting the worst-case
    /// gap: max(quiet) vs min(noisy). Symbol history shifts the window
    /// length (predictor state persists across windows), so the midpoint
    /// of single samples is not robust.
    pub fn calibrate(&self, smt: &mut SmtMachine) -> u64 {
        for _ in 0..2 {
            let _ = self.window(smt, false);
            let _ = self.window(smt, true);
        }
        let mut quiet_max = 0u64;
        let mut noisy_min = u64::MAX;
        for _ in 0..3 {
            quiet_max = quiet_max.max(self.window(smt, false).0);
            noisy_min = noisy_min.min(self.window(smt, true).0);
        }
        // Two consecutive noisy windows run faster than noisy-after-quiet;
        // leave extra headroom below the observed noisy floor.
        quiet_max + (noisy_min.saturating_sub(quiet_max)) / 4
    }

    /// Transmits `bits` (as 0/1 bytes) and reports quality.
    pub fn transmit(&self, cfg: &CpuConfig, seed: u64, bits: &[u8]) -> SmtChannelReport {
        let mut smt = SmtMachine::new(cfg.clone(), seed);
        let threshold = self.calibrate(&mut smt);
        let mut received = Vec::with_capacity(bits.len());
        let mut cycles = 0u64;
        for &b in bits {
            let (spy_cycles, pair) = self.window(&mut smt, b != 0);
            received.push(u8::from(spy_cycles > threshold));
            cycles += pair;
        }
        let err = error_rate(bits, &received);
        let seconds = cycles as f64 / (cfg.freq_ghz * 1e9);
        SmtChannelReport {
            bit_error_rate: err,
            cycles,
            seconds,
            bits_per_sec: if seconds > 0.0 {
                received.len() as f64 / seconds
            } else {
                0.0
            },
            received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulting_bit_slows_the_spy() {
        let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 4);
        let ch = SmtTetChannel::prototype();
        let (quiet, _) = ch.window(&mut smt, false);
        let (noisy, _) = ch.window(&mut smt, true);
        assert!(
            noisy > quiet + 10,
            "trojan faults must stretch the spy window ({noisy} vs {quiet})"
        );
    }

    #[test]
    fn prototype_mode_is_error_free_on_a_short_pattern() {
        let bits = [1u8, 0, 1, 1, 0, 0, 1, 0];
        let rep = SmtTetChannel::prototype().transmit(&CpuConfig::kaby_lake_i7_7700(), 4, &bits);
        assert_eq!(rep.received, bits);
        assert_eq!(rep.bit_error_rate, 0.0);
    }

    #[test]
    fn fast_mode_is_faster_per_bit() {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let bits = [1u8, 0, 1, 0];
        let slow = SmtTetChannel::prototype().transmit(&cfg, 4, &bits);
        let fast = SmtTetChannel::fast().transmit(&cfg, 4, &bits);
        assert!(
            fast.cycles < slow.cycles,
            "fast mode must spend fewer cycles ({} vs {})",
            fast.cycles,
            slow.cycles
        );
    }
}
