//! Gadget builders for the paper's attack primitives.
//!
//! All gadgets share one convention: `rbx` carries the attacker's test
//! value, `rax`/`r8` carry the timestamps, and the measured ToTE ends up
//! in `rax` when the program halts.

use tet_isa::{Asm, Cond, Program, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};

/// How the gadget suppresses the fault that opens the transient window —
/// `transient_begin()` in the paper's Figure 1a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientBegin {
    /// Register a signal handler; the kernel delivers the fault there.
    SignalHandler,
    /// Wrap the block in a TSX transaction; faults abort to the fallback.
    Tsx,
}

impl TransientBegin {
    /// Picks TSX when the CPU model has it, signal handling otherwise.
    pub fn auto(cfg: &CpuConfig) -> TransientBegin {
        if cfg.vuln.has_tsx {
            TransientBegin::Tsx
        } else {
            TransientBegin::SignalHandler
        }
    }
}

/// What value the in-window Jcc compares against the test value in `rbx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareSource {
    /// The faulting load's transiently forwarded byte (TET-MD, TET-ZBL).
    TransientLoad,
    /// An architecturally readable byte at this address (TET-CC: the
    /// covert-channel sender writes here).
    UserByte(u64),
    /// No data dependence: an always-taken `jz` from a self-subtraction
    /// (the Listing 2 KASLR probe).
    AlwaysTaken,
}

/// Specification of a Figure 1a-style TET gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetGadgetSpec {
    /// The address whose access opens the transient window (faults).
    pub probe_addr: u64,
    /// The Jcc's comparison source.
    pub compare: CompareSource,
    /// The Jcc flavour used on a match (the paper verifies JE/JZ,
    /// JNE/JNZ and JC all leak; see the `ablation_jcc` experiment).
    pub jcc: Cond,
    /// Fall-through `nop` padding. Small values keep the two paths
    /// occupancy-symmetric (TET-MD's *longer* sign); large values make
    /// the fall-through path expensive to squash (TET-ZBL's *shorter*
    /// sign). Mirrors the paper's Figure 4 nop-count ablation.
    pub sea_nops: usize,
    /// Fault suppression mechanism.
    pub begin: TransientBegin,
}

impl TetGadgetSpec {
    /// The TET-MD shape: compare the transiently loaded byte, symmetric
    /// paths, fault suppression per CPU capability.
    pub fn meltdown(probe_addr: u64, cfg: &CpuConfig) -> Self {
        TetGadgetSpec {
            probe_addr,
            compare: CompareSource::TransientLoad,
            jcc: Cond::E,
            sea_nops: 1,
            begin: TransientBegin::auto(cfg),
        }
    }

    /// The TET-ZBL shape: compare the stale-forwarded byte, long
    /// fall-through sea (occupancy-asymmetric).
    pub fn zombieload(probe_addr: u64, cfg: &CpuConfig) -> Self {
        TetGadgetSpec {
            probe_addr,
            compare: CompareSource::TransientLoad,
            jcc: Cond::E,
            sea_nops: 60,
            begin: TransientBegin::auto(cfg),
        }
    }

    /// The TET-CC shape: null-pointer window, compare a shared user byte.
    pub fn covert_channel(shared_byte: u64, cfg: &CpuConfig) -> Self {
        TetGadgetSpec {
            probe_addr: 0, // the paper's `*(char*)(0x0)`
            compare: CompareSource::UserByte(shared_byte),
            jcc: Cond::E,
            sea_nops: 1,
            begin: TransientBegin::auto(cfg),
        }
    }

    /// The Listing 2 KASLR probe shape: always-taken `jz`, signal
    /// suppression (works on every model).
    pub fn kaslr_probe(candidate: u64) -> Self {
        TetGadgetSpec {
            probe_addr: candidate,
            compare: CompareSource::AlwaysTaken,
            jcc: Cond::E,
            sea_nops: 1,
            begin: TransientBegin::SignalHandler,
        }
    }
}

/// An assembled TET gadget ready to measure.
#[derive(Debug, Clone)]
pub struct TetGadget {
    /// The gadget program.
    pub program: Program,
    /// Signal-handler / resume pc (the instruction after the block).
    pub handler_pc: usize,
    spec: TetGadgetSpec,
}

impl TetGadget {
    /// Builds the gadget of Figure 1a for `spec`.
    pub fn build(spec: TetGadgetSpec) -> TetGadget {
        let mut a = Asm::new();
        let matched = a.fresh_label();
        let end = a.fresh_label();

        a.rdtsc().mov_reg(Reg::R8, Reg::Rax).lfence();
        if spec.begin == TransientBegin::Tsx {
            a.xbegin(end);
        }
        // ---- Transient block start --------------------------------------
        a.load_byte_abs(Reg::Rax, spec.probe_addr); // the faulting access
        match spec.compare {
            CompareSource::TransientLoad => {
                a.cmp(Reg::Rax, Reg::Rbx);
            }
            CompareSource::UserByte(addr) => {
                // Inject a false dependency on the faulting load so the
                // Jcc resolves *inside* the transient window (its
                // recovery must overlap fault delivery for the stall to
                // be visible in ToTE).
                a.load_byte_abs(Reg::R10, addr)
                    .and(Reg::Rax, 0u64)
                    .add(Reg::R10, Reg::Rax)
                    .cmp(Reg::R10, Reg::Rbx);
            }
            CompareSource::AlwaysTaken => {
                a.sub(Reg::R11, Reg::R11); // zf := 1
            }
        }
        a.jcc(spec.jcc, matched)
            .nops(spec.sea_nops)
            .bind(matched)
            .nop();
        if spec.begin == TransientBegin::Tsx {
            a.xend();
        }
        // ---- Transient block end ----------------------------------------
        a.bind(end);
        let handler_pc = a.here();
        a.lfence().rdtsc().sub(Reg::Rax, Reg::R8).halt();

        TetGadget {
            program: a.assemble().expect("gadget layout is closed"),
            handler_pc,
            spec,
        }
    }

    /// The specification this gadget was built from.
    pub fn spec(&self) -> TetGadgetSpec {
        self.spec
    }

    /// The test value expected to take this gadget's in-window branch
    /// on `machine` right now — the divergence oracle for trial
    /// batching ([`crate::batch::ProbeMemo`]). `None` when no single
    /// test value is predictable (a non-equality compare, or an
    /// always-taken branch), which disables batching for this gadget.
    ///
    /// The prediction reads the same forwarding semantics the core's
    /// load path applies ([`Machine::peek_transient_byte`]), so it is
    /// exact whenever the gadget's compare operand is stable across
    /// the sweep — the warmed-up steady state every decode loop runs
    /// in.
    pub fn match_hint(&self, machine: &Machine) -> Option<u64> {
        if self.spec.jcc != Cond::E {
            return None;
        }
        match self.spec.compare {
            CompareSource::TransientLoad => {
                Some(machine.peek_transient_byte(self.spec.probe_addr) as u64)
            }
            CompareSource::UserByte(addr) => Some(machine.peek_transient_byte(addr) as u64),
            CompareSource::AlwaysTaken => None,
        }
    }

    /// Measures one ToTE sample with test value `test` in `rbx`.
    ///
    /// Returns `None` when the gadget did not complete (e.g. the fault
    /// could not be suppressed on this CPU model).
    pub fn measure(&self, machine: &mut Machine, test: u64) -> Option<u64> {
        self.measure_detailed(machine, test).map(|(tote, _)| tote)
    }

    /// Like [`TetGadget::measure`], also returning the total simulated
    /// cycles of the run (for throughput accounting).
    pub fn measure_detailed(&self, machine: &mut Machine, test: u64) -> Option<(u64, u64)> {
        let handler = match self.spec.begin {
            TransientBegin::SignalHandler => Some(self.handler_pc),
            // TSX aborts transfer control by themselves; faults outside
            // the transaction would be fatal, which is what we want to
            // observe.
            TransientBegin::Tsx => None,
        };
        let r = machine.run(
            &self.program,
            &RunConfig {
                handler_pc: handler,
                init_regs: vec![(Reg::Rbx, test)],
                ..RunConfig::default()
            },
        );
        match r.exit {
            RunExit::Halted => Some((r.regs.get(Reg::Rax), r.cycles)),
            _ => None,
        }
    }
}

/// The Listing 1 Spectre-RSB gadget: the architectural return address is
/// redirected past the measurement, while the RSB transiently "returns"
/// into a secret-dependent Jcc block.
#[derive(Debug, Clone)]
pub struct RsbGadget {
    /// The gadget program.
    pub program: Program,
    /// The architectural continuation (the redirected return target).
    pub done_pc: usize,
    /// Required initial `rsp` (one mapped stack page below it).
    pub stack_top: u64,
    secret_addr: u64,
}

impl RsbGadget {
    /// Builds the gadget reading the in-process secret byte at
    /// `secret_addr`, with `sea` nops of fall-through padding.
    pub fn build(secret_addr: u64, stack_top: u64, sea: usize) -> RsbGadget {
        let assemble = |done_pc: u64| -> (Asm, usize) {
            let mut a = Asm::new();
            let f = a.fresh_label();
            let matched = a.fresh_label();
            a.rdtsc().mov_reg(Reg::R8, Reg::Rax).lfence().call(f);
            // Transient return path (the RSB predicts a return here). On
            // a match the Jcc escapes straight to the measurement tail,
            // so the squashed window stays empty until the `ret`
            // resolves — maximising the occupancy difference the channel
            // times.
            a.load_byte_abs(Reg::Rax, secret_addr)
                .cmp(Reg::Rax, Reg::Rbx)
                .jcc(Cond::E, matched)
                .nops(sea);
            a.bind(f); // architectural callee: redirect the return
            a.mov_imm(Reg::R9, done_pc)
                .store(Reg::R9, Reg::Rsp, 0)
                .clflush(Reg::Rsp, 0)
                .ret();
            let done = a.here();
            a.bind(matched);
            a.lfence().rdtsc().sub(Reg::Rax, Reg::R8).halt();
            (a, done)
        };
        let (_, done_pc) = assemble(0);
        let (a, done2) = assemble(done_pc as u64);
        debug_assert_eq!(done_pc, done2, "two-pass layout must agree");
        RsbGadget {
            program: a.assemble().expect("gadget layout is closed"),
            done_pc,
            stack_top,
            secret_addr,
        }
    }

    /// The in-process secret address this gadget reads.
    pub fn secret_addr(&self) -> u64 {
        self.secret_addr
    }

    /// The test value expected to take the transient Jcc — the secret
    /// byte itself, architecturally readable in the Spectre threat
    /// model (see [`TetGadget::match_hint`]).
    pub fn match_hint(&self, machine: &Machine) -> Option<u64> {
        Some(machine.peek_transient_byte(self.secret_addr) as u64)
    }

    /// Measures one ToTE sample with test value `test`.
    pub fn measure(&self, machine: &mut Machine, test: u64) -> Option<u64> {
        self.measure_detailed(machine, test).map(|(tote, _)| tote)
    }

    /// Like [`RsbGadget::measure`], also returning total run cycles.
    pub fn measure_detailed(&self, machine: &mut Machine, test: u64) -> Option<(u64, u64)> {
        let r = machine.run(
            &self.program,
            &RunConfig {
                init_regs: vec![(Reg::Rbx, test), (Reg::Rsp, self.stack_top)],
                ..RunConfig::default()
            },
        );
        match r.exit {
            RunExit::Halted => Some((r.regs.get(Reg::Rax), r.cycles)),
            _ => None,
        }
    }
}

/// Measures the ToTE of any user-supplied gadget program (e.g. one
/// written in the [`tet_isa::text`] assembly syntax): the program must
/// follow the gadget convention — test value in `rbx`, the measured
/// elapsed time in `rax` at halt. Returns `(tote, run_cycles)`.
///
/// # Examples
///
/// ```
/// use tet_isa::text::parse;
/// use tet_uarch::{CpuConfig, Machine};
/// use whisper::gadget::measure_custom;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
/// let prog = parse(
///     "rdtsc\nmov r8, rax\nlfence\nnop\nnop\nlfence\nrdtsc\nsub rax, r8\nhalt",
/// )?;
/// let (tote, cycles) = measure_custom(&mut m, &prog, None, 0)
///     .expect("gadget completes");
/// assert!(tote > 0 && cycles >= tote);
/// # Ok(())
/// # }
/// ```
pub fn measure_custom(
    machine: &mut Machine,
    program: &Program,
    handler_pc: Option<usize>,
    test: u64,
) -> Option<(u64, u64)> {
    let r = machine.run(
        program,
        &RunConfig {
            handler_pc,
            init_regs: vec![(Reg::Rbx, test)],
            ..RunConfig::default()
        },
    );
    match r.exit {
        RunExit::Halted => Some((r.regs.get(Reg::Rax), r.cycles)),
        _ => None,
    }
}

/// A timed software-prefetch probe (the EntryBleed / prefetch-KASLR
/// baseline): never faults, measures only translation depth.
#[derive(Debug, Clone)]
pub struct PrefetchProbe {
    /// The probe program.
    pub program: Program,
    /// Whether a `syscall` precedes the probe to warm the KPTI
    /// trampoline's TLB entries (the EntryBleed trick).
    pub syscall_first: bool,
}

impl PrefetchProbe {
    /// Builds a probe of `candidate`.
    pub fn build(candidate: u64, syscall_first: bool) -> PrefetchProbe {
        let mut a = Asm::new();
        if syscall_first {
            a.syscall();
        }
        a.rdtsc()
            .mov_reg(Reg::R8, Reg::Rax)
            .lfence()
            .prefetch_abs(candidate)
            .lfence()
            .rdtsc()
            .sub(Reg::Rax, Reg::R8)
            .halt();
        PrefetchProbe {
            program: a.assemble().expect("probe layout is closed"),
            syscall_first,
        }
    }

    /// Measures the prefetch latency.
    pub fn measure(&self, machine: &mut Machine) -> Option<u64> {
        let r = machine.run(&self.program, &RunConfig::default());
        match r.exit {
            RunExit::Halted => Some(r.regs.get(Reg::Rax)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_uarch::CpuConfig;

    const KSECRET: u64 = 0xffff_ffff_8100_0000;

    #[test]
    fn auto_begin_follows_tsx_capability() {
        assert_eq!(
            TransientBegin::auto(&CpuConfig::skylake_i7_6700()),
            TransientBegin::Tsx
        );
        assert_eq!(
            TransientBegin::auto(&CpuConfig::raptor_lake_i9_13900k()),
            TransientBegin::SignalHandler
        );
    }

    #[test]
    fn signal_gadget_measures_a_tote() {
        let cfg = CpuConfig::raptor_lake_i9_13900k();
        let mut m = Machine::new(cfg.clone(), 1);
        m.map_kernel_page(KSECRET);
        let g = TetGadget::build(TetGadgetSpec::meltdown(KSECRET, &cfg));
        let t = g.measure(&mut m, 0).expect("measurement completes");
        assert!(t > 0);
    }

    #[test]
    fn tsx_gadget_measures_a_tote() {
        let cfg = CpuConfig::skylake_i7_6700();
        let mut m = Machine::new(cfg.clone(), 1);
        m.map_kernel_page(KSECRET);
        let g = TetGadget::build(TetGadgetSpec::meltdown(KSECRET, &cfg));
        assert_eq!(g.spec().begin, TransientBegin::Tsx);
        let t = g.measure(&mut m, 0).expect("TSX abort path completes");
        assert!(t > 0);
    }

    #[test]
    fn tsx_gadget_fails_without_tsx() {
        // Force a TSX gadget onto a CPU without TSX: the fault cannot be
        // suppressed and the measurement reports failure.
        let cfg = CpuConfig::raptor_lake_i9_13900k();
        let mut m = Machine::new(cfg, 1);
        m.map_kernel_page(KSECRET);
        let spec = TetGadgetSpec {
            begin: TransientBegin::Tsx,
            ..TetGadgetSpec::meltdown(KSECRET, &CpuConfig::skylake_i7_6700())
        };
        let g = TetGadget::build(spec);
        assert_eq!(g.measure(&mut m, 0), None);
    }

    #[test]
    fn meltdown_gadget_leaks_on_vulnerable_core() {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut m = Machine::new(cfg.clone(), 5);
        let pa = m.map_kernel_page(KSECRET);
        m.phys_mut().write_u8(pa, 0x5a);
        let g = TetGadget::build(TetGadgetSpec::meltdown(KSECRET, &cfg));
        for _ in 0..4 {
            g.measure(&mut m, 0);
        }
        let baseline = g
            .measure(&mut m, 0)
            .expect("warmed meltdown probe must complete");
        let hit = g
            .measure(&mut m, 0x5a)
            .expect("warmed meltdown probe must complete");
        assert!(
            hit > baseline,
            "match must lengthen ToTE ({hit} vs {baseline})"
        );
    }

    #[test]
    fn covert_channel_gadget_keys_on_user_byte() {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut m = Machine::new(cfg.clone(), 5);
        let shared = 0x44_0000u64;
        let pa = m.map_user_page(shared);
        m.phys_mut().write_u8(pa, 0x33);
        let g = TetGadget::build(TetGadgetSpec::covert_channel(shared, &cfg));
        for _ in 0..4 {
            g.measure(&mut m, 0);
        }
        let miss = g
            .measure(&mut m, 0x11)
            .expect("warmed covert-channel probe must complete");
        let hit = g
            .measure(&mut m, 0x33)
            .expect("warmed covert-channel probe must complete");
        assert!(
            hit > miss,
            "sender byte match must lengthen ToTE ({hit} vs {miss})"
        );
    }

    #[test]
    fn rsb_gadget_round_trips_architecturally() {
        let mut m = Machine::new(CpuConfig::raptor_lake_i9_13900k(), 5);
        let secret = 0x50_0000u64;
        let pa = m.map_user_page(secret);
        m.phys_mut().write_u8(pa, b'R');
        m.map_user_page(0x60_0000);
        let g = RsbGadget::build(secret, 0x60_0800, 48);
        let t = g.measure(&mut m, 0).expect("completes");
        assert!(t > 0);
    }

    #[test]
    fn prefetch_probe_distinguishes_translation_depth() {
        let mut m = Machine::new(CpuConfig::comet_lake_i9_10980xe(), 5);
        m.map_kernel_page(KSECRET);
        let mapped = PrefetchProbe::build(KSECRET, false);
        let unmapped = PrefetchProbe::build(0xffff_ffff_a000_0000, false);
        m.flush_tlbs();
        let t_mapped = mapped
            .measure(&mut m)
            .expect("prefetch probe of mapped VA must complete");
        m.flush_tlbs();
        let t_unmapped = unmapped
            .measure(&mut m)
            .expect("prefetch probe of unmapped VA must complete");
        assert_ne!(
            t_mapped, t_unmapped,
            "walk depth must show in prefetch time"
        );
    }
}
