//! ToTE analysis: histograms, batched argmax decoding, and channel
//! quality metrics (Figure 1b, §4.1).

use std::collections::BTreeMap;

/// Which extreme of the ToTE distribution marks the secret match.
///
/// TET-MD and TET-CC lengthen ToTE on a match ([`Polarity::MaxWins`]);
/// TET-ZBL and TET-RSB shorten it ([`Polarity::MinWins`], paper §4.3.2,
/// §4.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// The matching test value has the largest ToTE.
    MaxWins,
    /// The matching test value has the smallest ToTE.
    MinWins,
}

/// A ToTE frequency histogram (the raw data behind Figure 1b).
///
/// # Examples
///
/// ```
/// use whisper::Histogram;
///
/// let mut h = Histogram::new();
/// for t in [100, 100, 104, 130] {
///     h.add(t);
/// }
/// assert_eq!(h.mode(), Some(100));
/// assert_eq!(h.samples(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    bins: BTreeMap<u64, u64>,
    samples: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, tote: u64) {
        *self.bins.entry(tote).or_insert(0) += 1;
        self.samples += 1;
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The most frequent ToTE value, if any.
    pub fn mode(&self) -> Option<u64> {
        self.bins
            .iter()
            .max_by_key(|&(tote, count)| (*count, std::cmp::Reverse(*tote)))
            .map(|(tote, _)| *tote)
    }

    /// `(tote, count)` pairs in ascending ToTE order.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins.iter().map(|(t, c)| (*t, *c))
    }

    /// Renders an ASCII frequency plot, `width` characters at the mode.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.values().copied().max().unwrap_or(1);
        let mut out = String::new();
        for (tote, count) in &self.bins {
            let bar = (count * width as u64 / max) as usize;
            out.push_str(&format!(
                "{tote:>8} | {:<width$} {count}\n",
                "#".repeat(bar)
            ));
        }
        out
    }
}

/// One decoded byte with its vote distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// The decoded byte (the mode of per-batch winners).
    pub value: u8,
    /// Votes per candidate byte across batches.
    pub votes: Vec<u32>,
    /// Batches that produced a usable winner.
    pub valid_batches: u32,
    /// Min-aggregated ToTE per test value (`u64::MAX` where every probe
    /// failed) — the raw curve behind `value`, for experiments that need
    /// its shape (e.g. plateau edges) rather than just the arg-extreme.
    pub reduced: Vec<u64>,
}

impl DecodeOutcome {
    /// The set of test values whose aggregated ToTE equals the curve's
    /// extreme for `polarity` — a single element for a peaked curve, a
    /// plateau when a whole range of test values behaves identically.
    pub fn extreme_plateau(&self, polarity: Polarity) -> Vec<u8> {
        let valid = self.reduced.iter().copied().filter(|&t| t != u64::MAX);
        let Some(extreme) = (match polarity {
            Polarity::MaxWins => valid.max(),
            Polarity::MinWins => valid.min(),
        }) else {
            return Vec::new();
        };
        self.reduced
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == extreme)
            .map(|(i, _)| i as u8)
            .collect()
    }
}

/// The paper's decoding procedure (§4.3.1): sweep the test value 0..=255
/// in batches and take the arg-extreme of the aggregated ToTE.
///
/// Aggregation uses the per-test-value **minimum** across batches:
/// interference (timer interrupts, evictions) only ever *adds* cycles, so
/// the minimum converges on the clean ToTE and the secret's systematic
/// offset survives — this is the standard outlier-rejection step of
/// timing PoCs. Per-batch winner votes are also recorded (the counting
/// plot of Figure 1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgmaxDecoder {
    /// Number of sweeps to aggregate over.
    pub batches: u32,
    /// Which extreme marks the match.
    pub polarity: Polarity,
}

impl ArgmaxDecoder {
    /// Values whose aggregated ToTE exceeds the median by more than this
    /// are considered interference-corrupted and excluded from a MaxWins
    /// decision. The secret's systematic offset is tens of cycles; an OS
    /// interrupt bubble is hundreds.
    pub const OUTLIER_CAP: u64 = 150;

    /// Creates a decoder.
    pub fn new(batches: u32, polarity: Polarity) -> Self {
        assert!(batches > 0, "need at least one batch");
        ArgmaxDecoder { batches, polarity }
    }

    /// Decodes one byte. `probe(test, batch)` returns the ToTE sample for
    /// the given test value, or `None` when the measurement failed.
    pub fn decode<F>(&self, mut probe: F) -> DecodeOutcome
    where
        F: FnMut(u8, u32) -> Option<u64>,
    {
        let mut votes = vec![0u32; 256];
        let mut reduced = vec![u64::MAX; 256];
        let mut valid_batches = 0;
        for batch in 0..self.batches {
            let mut best: Option<(u64, u8)> = None;
            for test in 0..=255u8 {
                let Some(t) = probe(test, batch) else {
                    continue;
                };
                reduced[test as usize] = reduced[test as usize].min(t);
                let better = match (&best, self.polarity) {
                    (None, _) => true,
                    (Some((b, _)), Polarity::MaxWins) => t > *b,
                    (Some((b, _)), Polarity::MinWins) => t < *b,
                };
                if better {
                    best = Some((t, test));
                }
            }
            if let Some((_, winner)) = best {
                votes[winner as usize] += 1;
                valid_batches += 1;
            }
        }
        // Final decision from the noise-rejected per-value minima. For
        // MaxWins an additional outlier cut is needed: a value whose
        // *every* sample was hit by an interrupt has an inflated minimum
        // and would steal the argmax. Interference bubbles are an order
        // of magnitude larger than the secret's systematic offset, so
        // values more than [`Self::OUTLIER_CAP`] above the median are
        // treated as corrupted and excluded. (MinWins is inherently
        // immune: interference only ever adds cycles.)
        let mut valid: Vec<(usize, u64)> = reduced
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, t)| t != u64::MAX)
            .collect();
        let value = match self.polarity {
            Polarity::MaxWins => {
                let mut sorted: Vec<u64> = valid.iter().map(|&(_, t)| t).collect();
                sorted.sort_unstable();
                let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
                valid.retain(|&(_, t)| t <= median + Self::OUTLIER_CAP);
                // Ties resolve to the lowest test value for both
                // polarities (`max_by_key` alone would return the *last*
                // maximum while `min_by_key` returns the *first* minimum,
                // making the decode asymmetric between polarities).
                valid
                    .iter()
                    .max_by_key(|&&(i, t)| (t, std::cmp::Reverse(i)))
                    .map(|&(i, _)| i as u8)
            }
            Polarity::MinWins => valid
                .iter()
                .min_by_key(|&&(i, t)| (t, i))
                .map(|&(i, _)| i as u8),
        }
        .unwrap_or(0);
        DecodeOutcome {
            value,
            votes,
            valid_batches,
            reduced,
        }
    }
}

/// Fraction of positions where `received` differs from `sent`
/// (positions missing from `received` count as errors).
///
/// # Examples
///
/// ```
/// use whisper::analysis::error_rate;
/// assert_eq!(error_rate(b"abcd", b"abcd"), 0.0);
/// assert_eq!(error_rate(b"abcd", b"abxd"), 0.25);
/// assert_eq!(error_rate(b"abcd", b"ab"), 0.5);
/// ```
pub fn error_rate(sent: &[u8], received: &[u8]) -> f64 {
    if sent.is_empty() {
        return 0.0;
    }
    let wrong = sent
        .iter()
        .enumerate()
        .filter(|&(i, b)| received.get(i) != Some(b))
        .count();
    wrong as f64 / sent.len() as f64
}

/// Converts a byte count and a simulated cycle count to bytes/second at a
/// given core frequency — how §4.1's throughput figures are computed.
pub fn bytes_per_second(bytes: usize, cycles: u64, freq_ghz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    bytes as f64 / (cycles as f64 / (freq_ghz * 1e9))
}

/// Summary statistics over a sample set — the `n = 3, µ, sd` style
/// figures of §4.1.
///
/// # Examples
///
/// ```
/// use whisper::analysis::Stats;
///
/// let s = Stats::of(&[2.0, 4.0, 6.0]);
/// assert_eq!(s.n, 3);
/// assert_eq!(s.mean, 4.0);
/// assert!((s.sd - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Stats {
    /// Computes the summary of `samples` (all zeros for an empty set).
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats {
                n: 0,
                mean: 0.0,
                sd: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        Stats {
            n,
            mean,
            sd: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Computes the summary of integer cycle samples.
    pub fn of_cycles(samples: &[u64]) -> Stats {
        let v: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        Stats::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mode_prefers_highest_count() {
        let mut h = Histogram::new();
        for t in [5, 5, 5, 9, 9] {
            h.add(t);
        }
        assert_eq!(h.mode(), Some(5));
        assert_eq!(h.bins().count(), 2);
    }

    #[test]
    fn histogram_render_contains_bars() {
        let mut h = Histogram::new();
        h.add(100);
        h.add(100);
        h.add(120);
        let s = h.render(10);
        assert!(s.contains("100"));
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_histogram_has_no_mode() {
        assert_eq!(Histogram::new().mode(), None);
    }

    #[test]
    fn decoder_max_wins_finds_planted_peak() {
        let d = ArgmaxDecoder::new(3, Polarity::MaxWins);
        let out = d.decode(|test, _| Some(if test == 0x42 { 200 } else { 100 }));
        assert_eq!(out.value, 0x42);
        assert_eq!(out.votes[0x42], 3);
        assert_eq!(out.valid_batches, 3);
    }

    #[test]
    fn decoder_min_wins_finds_planted_dip() {
        let d = ArgmaxDecoder::new(2, Polarity::MinWins);
        let out = d.decode(|test, _| Some(if test == 0x17 { 80 } else { 100 }));
        assert_eq!(out.value, 0x17);
    }

    #[test]
    fn decoder_majority_voting_beats_noise() {
        // One batch is corrupted; two clean batches out-vote it.
        let d = ArgmaxDecoder::new(3, Polarity::MaxWins);
        let out = d.decode(|test, batch| {
            Some(match (batch, test) {
                (1, 0x99) => 500, // noise spike in batch 1
                (_, 0x42) => 200,
                _ => 100,
            })
        });
        assert_eq!(out.value, 0x42);
        assert_eq!(out.votes[0x99], 1);
    }

    #[test]
    fn decoder_tolerates_failed_probes() {
        let d = ArgmaxDecoder::new(2, Polarity::MaxWins);
        let out = d.decode(|test, _| {
            if test % 2 == 0 {
                None
            } else {
                Some(if test == 0x43 { 120 } else { 50 })
            }
        });
        assert_eq!(out.value, 0x43);
    }

    #[test]
    fn decoder_rejects_fully_corrupted_values() {
        // A value whose every sample carries an interrupt bubble must not
        // steal the argmax from the secret's modest systematic offset.
        let d = ArgmaxDecoder::new(3, Polarity::MaxWins);
        let out = d.decode(|test, _| {
            Some(match test {
                0x10 => 520, // corrupted in every batch
                0x42 => 130, // the secret
                _ => 100,
            })
        });
        assert_eq!(out.value, 0x42);
    }

    #[test]
    fn decoder_breaks_ties_toward_lowest_value_for_both_polarities() {
        // Two test values tie at the extreme ToTE. The decode must pick
        // the same (lowest) one under both polarities — `max_by_key`
        // returns the last maximal element, which used to make MaxWins
        // resolve ties to the *highest* value while MinWins picked the
        // lowest.
        let tied = |test: u8| {
            Some(if test == 0x10 || test == 0xa0 {
                130
            } else {
                100
            })
        };
        let max = ArgmaxDecoder::new(2, Polarity::MaxWins).decode(|t, _| tied(t));
        assert_eq!(max.value, 0x10, "MaxWins tie must resolve low");

        let dipped = |test: u8| {
            Some(if test == 0x10 || test == 0xa0 {
                70
            } else {
                100
            })
        };
        let min = ArgmaxDecoder::new(2, Polarity::MinWins).decode(|t, _| dipped(t));
        assert_eq!(min.value, 0x10, "MinWins tie must resolve low");
    }

    #[test]
    fn decoder_all_failed_probes_yields_zero_votes() {
        let d = ArgmaxDecoder::new(2, Polarity::MaxWins);
        let out = d.decode(|_, _| None);
        assert_eq!(out.valid_batches, 0);
        assert!(out.votes.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn decoder_rejects_zero_batches() {
        let _ = ArgmaxDecoder::new(0, Polarity::MaxWins);
    }

    #[test]
    fn stats_of_empty_is_zeroes() {
        let s = Stats::of(&[]);
        assert_eq!((s.n, s.mean, s.sd), (0, 0.0, 0.0));
    }

    #[test]
    fn stats_of_constant_has_zero_sd() {
        let s = Stats::of_cycles(&[9, 9, 9, 9]);
        assert_eq!(s.mean, 9.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!((s.min, s.max), (9.0, 9.0));
    }

    #[test]
    fn throughput_math() {
        // 1000 bytes in 1e9 cycles at 1 GHz = 1000 B/s.
        let bps = bytes_per_second(1000, 1_000_000_000, 1.0);
        assert!((bps - 1000.0).abs() < 1e-6);
    }
}
