//! One-call environment setup: CPU preset + kernel (KASLR/KPTI/FLARE) +
//! secrets + noise.

use tet_os::{ContainerEnv, Kernel, KernelConfig};
use tet_uarch::{CpuConfig, Machine};

/// Options for building a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioOptions {
    /// Seed for DRAM jitter and KASLR placement.
    pub seed: u64,
    /// Bytes planted in the simulated kernel's secret page (TET-MD's
    /// target).
    pub kernel_secret: Vec<u8>,
    /// Bytes planted in an in-process user page (TET-RSB's target).
    pub user_secret: Vec<u8>,
    /// Enable KPTI.
    pub kpti: bool,
    /// Enable FLARE.
    pub flare: bool,
    /// OS timer-interrupt noise period in cycles (`0` = off).
    pub interrupt_period: u64,
    /// The container environment (bare metal by default).
    pub container: ContainerEnv,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            seed: 1,
            kernel_secret: b"WHISPER!".to_vec(),
            user_secret: b"rsb-secret".to_vec(),
            kpti: false,
            flare: false,
            interrupt_period: 0,
            container: ContainerEnv::bare_metal(),
        }
    }
}

/// Virtual address of the attacker-visible shared page (covert-channel
/// sender buffer).
pub const SHARED_PAGE: u64 = 0x44_0000;

/// Virtual address of the in-process user secret page.
pub const USER_SECRET_PAGE: u64 = 0x50_0000;

/// Top of the attacker's stack (one page mapped below).
pub const STACK_TOP: u64 = 0x60_0800;

/// Virtual address of the victim's working page (its loads prime the
/// line fill buffer for TET-ZBL).
pub const VICTIM_PAGE: u64 = 0x70_0000;

/// A ready-to-attack environment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The attacker's machine (user-mode view).
    pub machine: Machine,
    /// The installed kernel (KASLR placement, KPTI/FLARE state).
    pub kernel: Kernel,
    /// Virtual address of the kernel secret (mapped supervisor-only;
    /// under KPTI it is absent from the attacker's tables).
    pub kernel_secret_va: u64,
    /// Virtual address of the in-process user secret.
    pub user_secret_va: u64,
    /// The container environment.
    pub container: ContainerEnv,
}

impl Scenario {
    /// Builds the environment on the given CPU model.
    pub fn new(cpu: CpuConfig, opts: &ScenarioOptions) -> Scenario {
        let mut cfg = cpu;
        cfg.timing.interrupt_period = opts.interrupt_period;
        let mut machine = Machine::new(cfg, opts.seed);

        // Install the kernel into the attacker-visible address space.
        let kernel = {
            let mut frames = tet_mem::FrameAlloc::starting_at(0x10_0000);
            let kcfg = KernelConfig {
                seed: opts.seed,
                kpti: opts.kpti,
                flare: opts.flare,
                ..KernelConfig::default()
            };
            // Split borrows: install needs the address space only.
            let kernel = Kernel::install(&kcfg, machine_aspace(&mut machine), &mut frames);
            kernel
        };

        // Plant the kernel secret (possible even under KPTI: the secret
        // page exists physically; we write through a scratch mapping of
        // the same frame in the full kernel view).
        let secret_va = kernel.secret_va;
        if !opts.kpti {
            if let Some(pa) = machine.aspace().translate(secret_va) {
                let bytes = opts.kernel_secret.clone();
                machine.phys_mut().write_bytes(pa, &bytes);
            }
        }

        // User-side pages.
        let shared_pa = machine.map_user_page(SHARED_PAGE);
        let _ = shared_pa;
        let user_pa = machine.map_user_page(USER_SECRET_PAGE);
        machine.map_user_page(STACK_TOP - 8);
        let victim_pa = machine.map_user_page(VICTIM_PAGE);
        let user_secret = opts.user_secret.clone();
        machine.phys_mut().write_bytes(user_pa, &user_secret);
        machine
            .phys_mut()
            .write_bytes(victim_pa, b"victim-lfb-data");

        // Syscalls enter through the trampoline.
        machine.cpu_mut().set_syscall_pages(vec![kernel.trampoline]);

        Scenario {
            machine,
            kernel,
            kernel_secret_va: secret_va,
            user_secret_va: USER_SECRET_PAGE,
            container: opts.container.clone(),
        }
    }

    /// The covert-channel shared page address.
    pub fn shared_page(&self) -> u64 {
        SHARED_PAGE
    }

    /// Runs the simulated victim access pattern once: loads from the
    /// victim page so its data transits the shared line fill buffer
    /// (the TET-ZBL priming step).
    pub fn victim_touch(&mut self, offset: u64) {
        let pa = self
            .machine
            .aspace()
            .translate(VICTIM_PAGE + offset)
            .expect("victim page is mapped");
        // The victim's demand load: route it through the hierarchy so the
        // line (with its data) lands in the LFB.
        self.machine.clflush_virt(VICTIM_PAGE + offset);
        let (mem, phys) = self.machine.mem_and_phys_mut();
        mem.data_load(pa, phys);
    }

    /// Plants a byte in the victim page.
    pub fn set_victim_byte(&mut self, offset: u64, value: u8) {
        let pa = self
            .machine
            .aspace()
            .translate(VICTIM_PAGE + offset)
            .expect("victim page is mapped");
        self.machine.phys_mut().write_u8(pa, value);
    }

    /// Writes the covert-channel sender's byte.
    pub fn sender_write(&mut self, value: u8) {
        let pa = self
            .machine
            .aspace()
            .translate(SHARED_PAGE)
            .expect("shared page is mapped");
        self.machine.phys_mut().write_u8(pa, value);
    }
}

fn machine_aspace(machine: &mut Machine) -> &mut tet_mem::AddressSpace {
    machine.aspace_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_mem::WalkOutcome;

    #[test]
    fn scenario_plants_secrets() {
        let sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let pa = sc
            .machine
            .aspace()
            .translate(sc.kernel_secret_va)
            .expect("kernel secret VA must be mapped");
        assert_eq!(sc.machine.phys().read_bytes(pa, 8), b"WHISPER!");
        let upa = sc
            .machine
            .aspace()
            .translate(sc.user_secret_va)
            .expect("user secret VA must be mapped");
        assert_eq!(sc.machine.phys().read_bytes(upa, 10), b"rsb-secret");
    }

    #[test]
    fn kpti_scenario_hides_the_kernel_secret() {
        let sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions {
                kpti: true,
                ..ScenarioOptions::default()
            },
        );
        assert!(sc.machine.aspace().translate(sc.kernel_secret_va).is_none());
        assert!(matches!(
            sc.machine.aspace().walk(sc.kernel.trampoline).0,
            WalkOutcome::Mapped(_)
        ));
    }

    #[test]
    fn victim_touch_primes_the_lfb() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.set_victim_byte(0, b'Q');
        sc.victim_touch(0);
        assert_eq!(sc.machine.mem().lfb().stale_byte(0), Some(b'Q'));
    }

    #[test]
    fn sender_write_is_visible_to_loads() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0x5c);
        assert_eq!(sc.machine.read_virt_u8(SHARED_PAGE), 0x5c);
    }

    #[test]
    fn seeds_relocate_the_kernel() {
        let bases: std::collections::HashSet<u64> = (0..8)
            .map(|seed| {
                Scenario::new(
                    CpuConfig::kaby_lake_i7_7700(),
                    &ScenarioOptions {
                        seed,
                        ..ScenarioOptions::default()
                    },
                )
                .kernel
                .base
            })
            .collect();
        assert!(bases.len() > 2, "KASLR must vary with the seed");
    }
}
