//! TET-CC: the transient-execution-timing covert channel (§4.1).
//!
//! The sender writes a byte into a shared page; the receiver sweeps the
//! test value through the Figure 1a gadget (null-pointer window, Jcc on
//! the shared byte) and decodes by batched argmax. The paper reports
//! 500 B/s at < 5 % error on the i7-7700 for 1 KiB of random payload.

use std::sync::{Arc, OnceLock};

use crate::analysis::{bytes_per_second, error_rate, ArgmaxDecoder, Polarity};
use crate::batch::{FixedRec, ProbeMemo};
use crate::gadget::{TetGadget, TetGadgetSpec};
use crate::scenario::{Scenario, SHARED_PAGE};
use tet_uarch::{Machine, MachineSnapshot};

/// The fixed record a decode sweep's probes establish: the probe
/// closure returns `Option<(ToTE, cycles)>`, so that is the result
/// type the memo memoizes.
type SweepFixedRec = FixedRec<Option<(u64, u64)>>;

/// Process-wide default for snapshot-forked trials: `TET_SNAPSHOT=0`
/// turns them off (every trial then replays warm-up sequentially).
fn snapshot_default() -> bool {
    static SNAP: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SNAP.get_or_init(|| tet_obs::env_flag("TET_SNAPSHOT", true))
}

/// Quality/throughput report of a covert-channel transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelReport {
    /// Bytes the receiver decoded.
    pub received: Vec<u8>,
    /// Fraction of wrong bytes.
    pub error_rate: f64,
    /// Total simulated cycles spent receiving.
    pub cycles: u64,
    /// Wall-clock seconds at the model's frequency.
    pub seconds: f64,
    /// Decoded throughput.
    pub bytes_per_sec: f64,
}

impl ChannelReport {
    /// Builds the quality report for one transmission.
    ///
    /// Degenerate transmissions (empty payload, zero cycles) report all
    /// rates as `0.0` rather than `NaN`/`inf` — these values serialize
    /// into RunReport JSON, where non-finite numbers are invalid.
    pub fn new(sent: &[u8], received: Vec<u8>, cycles: u64, freq_ghz: f64) -> Self {
        let denom = freq_ghz * 1e9;
        let seconds = if cycles == 0 || denom <= 0.0 {
            0.0
        } else {
            cycles as f64 / denom
        };
        ChannelReport {
            error_rate: error_rate(sent, &received),
            cycles,
            seconds,
            bytes_per_sec: bytes_per_second(received.len(), cycles, freq_ghz),
            received,
        }
    }
}

/// The TET covert channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetCovertChannel {
    /// Argmax batches per byte (more batches: slower, more accurate).
    pub batches: u32,
    /// Fork each byte's trials from a shared warmed-up
    /// [`MachineSnapshot`] instead of warming up per byte. `None`
    /// follows the process default (`TET_SNAPSHOT`, on unless `0`);
    /// tests pin the mode explicitly via
    /// [`TetCovertChannel::with_snapshot_trials`].
    pub snapshot_trials: Option<bool>,
}

impl Default for TetCovertChannel {
    fn default() -> Self {
        TetCovertChannel {
            batches: 3,
            snapshot_trials: None,
        }
    }
}

impl TetCovertChannel {
    /// Creates a channel with the given batch count.
    pub fn new(batches: u32) -> Self {
        TetCovertChannel {
            batches,
            snapshot_trials: None,
        }
    }

    /// Pins snapshot-forked trials on or off, overriding `TET_SNAPSHOT`.
    pub fn with_snapshot_trials(mut self, on: bool) -> Self {
        self.snapshot_trials = Some(on);
        self
    }

    fn snapshot_mode(&self) -> bool {
        self.snapshot_trials.unwrap_or_else(snapshot_default)
    }

    /// Receives one byte (the sender must have written it already).
    pub fn receive_byte(&self, sc: &mut Scenario) -> (u8, u64) {
        let cfg = sc.machine.config().clone();
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        let mut cycles = 0u64;
        // Warm up the gadget's code and structures once. The warm-up run
        // spends simulated receiver time like any other, so it counts
        // toward the cycle total (and thus the reported throughput).
        if let Some((_, c)) = gadget.measure_detailed(&mut sc.machine, 0) {
            cycles += c;
        }
        // Divergence-aware batching: the shared byte predicts the one
        // test value that takes the in-window branch; proven-fixed
        // non-matching probes replay instead of simulating.
        let mut memo = ProbeMemo::new(&sc.machine, gadget.match_hint(&sc.machine));
        let decoder = ArgmaxDecoder::new(self.batches, Polarity::MaxWins);
        let out = decoder.decode(|test, _| {
            let (tote, c) = memo.probe(&mut sc.machine, test as u64, |m| {
                gadget.measure_detailed(m, test as u64)
            })?;
            cycles += c;
            Some(tote)
        });
        (out.value, cycles)
    }

    /// Forked-trial core shared by [`TetCovertChannel::transmit`] and
    /// [`TetCovertChannel::transmit_chunked`]: one warm-up probe primes
    /// code pages, predictors and caches; every byte then restores the
    /// warmed snapshot, re-seeds the interrupt phase from its **global
    /// byte index**, writes its value into the shared page and decodes.
    /// Each byte's result depends only on the snapshot and its index —
    /// never on which worker ran it or what ran before — so the output
    /// (bytes *and* cycles) is identical at any thread count.
    fn transmit_from_snapshot(
        &self,
        machine: &Machine,
        payload: &[u8],
        threads: usize,
    ) -> (Vec<u8>, u64) {
        if payload.is_empty() {
            return (Vec::new(), 0);
        }
        let cfg = machine.config().clone();
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(SHARED_PAGE, &cfg));
        let mut warm = machine.clone();
        let mut cycles = 0u64;
        // The warm-up run spends simulated receiver time like any other,
        // so it counts toward the cycle total — but only once for the
        // whole payload, not once per byte.
        if let Some((_, c)) = gadget.measure_detailed(&mut warm, 0) {
            cycles += c;
        }
        let snap: MachineSnapshot = warm.snapshot();
        let decoder = ArgmaxDecoder::new(self.batches, Polarity::MaxWins);
        // All trials fork from one snapshot, so their non-matching
        // probes share one fixed point: whichever clone establishes it
        // first publishes the record, and every later clone fast-forwards
        // from it after a one-probe confirmation. The record is a pure
        // function of the snapshot (racing writers store identical
        // values), so decoding stays identical at any thread count.
        let fixed: Arc<OnceLock<SweepFixedRec>> = Arc::new(OnceLock::new());
        let per_byte: Vec<(u8, u64)> = tet_par::run_indexed_with(
            threads,
            payload.len(),
            || Machine::from_snapshot(&snap),
            |m, i| {
                m.restore(&snap);
                m.cpu_mut().reseed_interrupt_phase(i as u64);
                let pa = m
                    .aspace()
                    .translate(SHARED_PAGE)
                    .expect("shared page is mapped");
                m.phys_mut().write_u8(pa, payload[i]);
                // The hint is this trial's own payload byte (read back
                // through the forwarding oracle, after the write above).
                let mut memo = ProbeMemo::seeded(m, gadget.match_hint(m), fixed.get().cloned());
                let mut cyc = 0u64;
                let out = decoder.decode(|test, _| {
                    let (tote, c) =
                        memo.probe(m, test as u64, |m| gadget.measure_detailed(m, test as u64))?;
                    cyc += c;
                    Some(tote)
                });
                if let Some(rec) = memo.fixed() {
                    let _ = fixed.set(rec.clone());
                }
                (out.value, cyc)
            },
        );
        let mut received = Vec::with_capacity(payload.len());
        for (b, c) in per_byte {
            received.push(b);
            cycles += c;
        }
        (received, cycles)
    }

    /// Transmits `payload` through the channel and reports quality.
    ///
    /// In snapshot mode (the default, see
    /// [`TetCovertChannel::snapshot_trials`]) the receiver warms up
    /// once, snapshots the machine and forks every byte's trials from
    /// the snapshot; `sc` itself is left untouched. With snapshots off
    /// it falls back to the sequential per-byte warm-up path, mutating
    /// `sc` as it goes.
    pub fn transmit(&self, sc: &mut Scenario, payload: &[u8]) -> ChannelReport {
        let freq = sc.machine.config().freq_ghz;
        if self.snapshot_mode() {
            let (received, cycles) = self.transmit_from_snapshot(&sc.machine, payload, 1);
            return ChannelReport::new(payload, received, cycles, freq);
        }
        let mut received = Vec::with_capacity(payload.len());
        let mut cycles = 0u64;
        for &b in payload {
            sc.sender_write(b);
            let (got, c) = self.receive_byte(sc);
            received.push(got);
            cycles += c;
        }
        ChannelReport::new(payload, received, cycles, freq)
    }

    /// Payload chunk size for [`TetCovertChannel::transmit_chunked`].
    ///
    /// Fixed (never derived from the thread count) so the work
    /// decomposition — and therefore every decoded byte — is identical for
    /// any `--threads` setting.
    pub const CHUNK_BYTES: usize = 32;

    /// Transmits `payload` on up to `threads` worker threads and reports
    /// quality.
    ///
    /// In snapshot mode (the default) every byte forks from one shared
    /// warmed-up [`MachineSnapshot`] — each worker holds a private
    /// machine rebuilt from the shared snapshot per byte — so the
    /// decode trajectory is **identical to [`Self::transmit`]**, bytes
    /// and cycles, at any thread count: both run the exact same
    /// per-byte procedure from the exact same snapshot.
    ///
    /// With snapshots off it falls back to the legacy decomposition:
    /// fixed [`Self::CHUNK_BYTES`]-byte chunks, each on a fresh clone
    /// of `sc` (chunk boundaries then reset the receiver's warm-up
    /// state, so the trajectory differs from `transmit` — but is still
    /// byte-identical across thread counts).
    ///
    /// Reported `cycles` is the total simulated receive cost.
    pub fn transmit_chunked(&self, sc: &Scenario, payload: &[u8], threads: usize) -> ChannelReport {
        let freq = sc.machine.config().freq_ghz;
        if self.snapshot_mode() {
            let (received, cycles) = self.transmit_from_snapshot(&sc.machine, payload, threads);
            return ChannelReport::new(payload, received, cycles, freq);
        }
        let bounds = tet_par::chunk_bounds(payload.len(), Self::CHUNK_BYTES);
        let parts: Vec<(Vec<u8>, u64)> = tet_par::par_map(threads, &bounds, |&(start, end)| {
            let mut local = sc.clone();
            let mut rec = Vec::with_capacity(end - start);
            let mut cyc = 0u64;
            for &b in &payload[start..end] {
                local.sender_write(b);
                let (got, c) = self.receive_byte(&mut local);
                rec.push(got);
                cyc += c;
            }
            (rec, cyc)
        });
        let mut received = Vec::with_capacity(payload.len());
        let mut cycles = 0u64;
        for (rec, cyc) in parts {
            received.extend_from_slice(&rec);
            cycles += cyc;
        }
        ChannelReport::new(payload, received, cycles, freq)
    }

    /// Transmits with `repeats`-fold repetition coding: each byte is sent
    /// multiple times and decoded by majority — the accuracy/throughput
    /// trade the paper's §4.4 leaves to future work ("speed up with high
    /// accuracy"), applied to TET-CC.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn transmit_with_redundancy(
        &self,
        sc: &mut Scenario,
        payload: &[u8],
        repeats: u32,
    ) -> ChannelReport {
        assert!(repeats > 0, "need at least one repeat");
        let freq = sc.machine.config().freq_ghz;
        let mut received = Vec::with_capacity(payload.len());
        let mut cycles = 0u64;
        for &b in payload {
            sc.sender_write(b);
            let mut counts = [0u32; 256];
            for _ in 0..repeats {
                let (got, c) = self.receive_byte(sc);
                counts[got as usize] += 1;
                cycles += c;
            }
            let winner = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(v, _)| v as u8)
                .unwrap_or(0);
            received.push(winner);
        }
        ChannelReport::new(payload, received, cycles, freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOptions;
    use tet_uarch::CpuConfig;

    #[test]
    fn channel_moves_one_byte() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0xc3);
        let (got, cycles) = TetCovertChannel::default().receive_byte(&mut sc);
        assert_eq!(got, 0xc3);
        assert!(cycles > 0);
    }

    #[test]
    fn channel_moves_a_short_payload_error_free_without_noise() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let payload = b"TET";
        let report = TetCovertChannel::new(2).transmit(&mut sc, payload);
        assert_eq!(report.received, payload);
        assert_eq!(report.error_rate, 0.0);
        assert!(report.bytes_per_sec > 0.0);
    }

    #[test]
    fn warm_up_cycles_are_counted() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0x5a);
        let mut replay = sc.clone();
        let (_, cycles) = TetCovertChannel::new(1).receive_byte(&mut sc);
        // Replay the exact same deterministic measurement sequence by
        // hand on the clone, keeping the warm-up cost separate.
        let cfg = replay.machine.config().clone();
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(replay.shared_page(), &cfg));
        let (_, warmup) = gadget
            .measure_detailed(&mut replay.machine, 0)
            .expect("warm-up probe must complete");
        let mut probes = 0u64;
        for test in 0..=255u8 {
            if let Some((_, c)) = gadget.measure_detailed(&mut replay.machine, test as u64) {
                probes += c;
            }
        }
        assert!(warmup > 0);
        assert_eq!(
            cycles,
            warmup + probes,
            "the warm-up run must count toward the receive cost"
        );
    }

    #[test]
    fn empty_payload_reports_finite_zero_rates() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let ch = TetCovertChannel::new(1);
        let direct = ch.transmit(&mut sc, b"");
        let chunked = ch.transmit_chunked(&sc, b"", 4);
        let coded = ch.transmit_with_redundancy(&mut sc, b"", 2);
        for report in [&direct, &chunked, &coded] {
            assert!(report.received.is_empty());
            assert_eq!(report.cycles, 0);
            // All rates must be exact zeros — NaN/inf here would
            // serialize into RunReport JSON as invalid tokens.
            assert_eq!(report.error_rate, 0.0);
            assert_eq!(report.seconds, 0.0);
            assert_eq!(report.bytes_per_sec, 0.0);
        }
    }

    #[test]
    fn redundancy_beats_single_shot_under_heavy_noise() {
        let mk = || {
            Scenario::new(
                CpuConfig::kaby_lake_i7_7700(),
                &ScenarioOptions {
                    interrupt_period: 601, // heavy: most probes disturbed
                    ..ScenarioOptions::default()
                },
            )
        };
        let payload: Vec<u8> = (0..12).map(|i| i * 19 + 3).collect();
        let single = TetCovertChannel::new(1).transmit(&mut mk(), &payload);
        let coded = TetCovertChannel::new(1).transmit_with_redundancy(&mut mk(), &payload, 5);
        assert!(
            coded.error_rate <= single.error_rate,
            "repetition coding must not hurt ({} vs {})",
            coded.error_rate,
            single.error_rate
        );
        assert!(coded.cycles > single.cycles, "redundancy costs time");
    }

    #[test]
    fn chunked_transmit_equals_transmit_at_any_thread_count() {
        // Snapshot mode: every byte forks from the same warmed-up
        // snapshot, so the chunked/parallel path runs the *exact* same
        // per-byte trials as the serial `transmit` — the reports must be
        // equal, cycles included.
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let payload: Vec<u8> = (0..40u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        let ch = TetCovertChannel::new(2).with_snapshot_trials(true);
        let serial = ch.transmit(&mut sc, &payload);
        assert_eq!(
            serial.received, payload,
            "noise-free channel decodes exactly"
        );
        for threads in [1, 2, 8] {
            let par = ch.transmit_chunked(&sc, &payload, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn chunked_transmit_matches_across_thread_counts_without_snapshots() {
        // Legacy mode (snapshots pinned off): chunk-per-clone
        // decomposition, still byte-identical across thread counts.
        let sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        // Long enough for two chunks (CHUNK_BYTES = 32).
        let payload: Vec<u8> = (0..40u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        let ch = TetCovertChannel::new(2).with_snapshot_trials(false);
        let serial = ch.transmit_chunked(&sc, &payload, 1);
        assert_eq!(
            serial.received, payload,
            "noise-free channel decodes exactly"
        );
        for threads in [2, 8] {
            let par = ch.transmit_chunked(&sc, &payload, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn snapshot_and_sequential_transmit_decode_the_same_payload() {
        // The two modes take different trial trajectories (shared vs
        // per-byte warm-up) but on a noise-free channel both must decode
        // the payload exactly.
        let payload: Vec<u8> = (0..16u8).map(|i| i.wrapping_mul(83) ^ 0x5a).collect();
        let mk = || Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let snap = TetCovertChannel::new(2)
            .with_snapshot_trials(true)
            .transmit(&mut mk(), &payload);
        let seq = TetCovertChannel::new(2)
            .with_snapshot_trials(false)
            .transmit(&mut mk(), &payload);
        assert_eq!(snap.received, payload);
        assert_eq!(seq.received, payload);
        assert!(
            snap.cycles < seq.cycles,
            "shared warm-up must cost fewer simulated cycles ({} vs {})",
            snap.cycles,
            seq.cycles
        );
    }

    #[test]
    fn channel_works_on_every_table2_model() {
        // TET-CC is the one attack that succeeds on all five CPUs.
        for cfg in CpuConfig::table2_presets() {
            let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
            sc.sender_write(b'W');
            let (got, _) = TetCovertChannel::new(2).receive_byte(&mut sc);
            assert_eq!(got, b'W', "TET-CC must work on {}", cfg.name);
        }
    }
}
