//! TET-Spectre-RSB (§4.3.3, Listing 1): leaking an in-process secret
//! through the return-stack-buffer misprediction window, transmitted via
//! the TET channel.
//!
//! The gadget redirects its architectural return address past the
//! measurement and flushes the stack slot, so `ret` resolves slowly while
//! the RSB transiently "returns" into a secret-dependent Jcc block. A
//! triggered in-window Jcc empties the window early and the total time
//! **shrinks** — the decoder takes the argmin.

use tet_uarch::Machine;

use crate::analysis::{ArgmaxDecoder, Polarity};
use crate::attacks::{LeakReport, LeakedByte};
use crate::batch::ProbeMemo;
use crate::gadget::RsbGadget;
use crate::scenario::STACK_TOP;

/// The TET-Spectre-RSB attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetSpectreRsb {
    /// Argmax batches per byte.
    pub batches: u32,
    /// Fall-through nop padding of the transient block.
    pub sea_nops: usize,
}

impl Default for TetSpectreRsb {
    fn default() -> Self {
        TetSpectreRsb {
            batches: 3,
            // The fall-through squash cost must clear the recovery-window
            // floor for the occupancy signal to show (see DESIGN.md).
            sea_nops: 96,
        }
    }
}

impl TetSpectreRsb {
    /// Leaks the in-process byte at `addr` (readable architecturally in
    /// the Spectre threat model, but the attack only touches it
    /// transiently).
    pub fn leak_byte(&self, machine: &mut Machine, addr: u64) -> LeakedByte {
        let gadget = RsbGadget::build(addr, STACK_TOP, self.sea_nops);
        // Warm the secret into L1 so the in-window Jcc resolves inside
        // the transient window, and train the gadget structures.
        for _ in 0..4 {
            gadget.measure(machine, 0);
        }
        let mut memo = ProbeMemo::new(machine, gadget.match_hint(machine));
        let mut cycles = 0u64;
        let decoder = ArgmaxDecoder::new(self.batches, Polarity::MinWins);
        let out = decoder.decode(|test, _| {
            let (tote, c) = memo.probe(machine, test as u64, |m| {
                gadget.measure_detailed(m, test as u64)
            })?;
            cycles += c;
            Some(tote)
        });
        LeakedByte {
            value: out.value,
            votes: out.votes,
            cycles,
        }
    }

    /// Leaks `len` consecutive in-process bytes.
    pub fn leak(&self, machine: &mut Machine, addr: u64, len: usize) -> LeakReport {
        let freq = machine.config().freq_ghz;
        let mut recovered = Vec::with_capacity(len);
        let mut cycles = 0u64;
        for i in 0..len {
            let b = self.leak_byte(machine, addr + i as u64);
            recovered.push(b.value);
            cycles += b.cycles;
        }
        LeakReport::new(recovered, cycles, freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    #[test]
    fn leaks_the_user_secret_on_raptor_lake() {
        // Table 2: TET-RSB reaches its best numbers on the i9-13900K.
        let mut sc = Scenario::new(
            CpuConfig::raptor_lake_i9_13900k(),
            &ScenarioOptions::default(),
        );
        let report = TetSpectreRsb::default().leak(&mut sc.machine, sc.user_secret_va, 3);
        assert_eq!(report.recovered, b"rsb");
    }

    #[test]
    fn leaks_on_the_tsx_era_cores_too() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let report = TetSpectreRsb::default().leak(&mut sc.machine, sc.user_secret_va, 2);
        assert_eq!(report.recovered, b"rs");
    }
}
