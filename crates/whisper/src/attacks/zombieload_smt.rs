//! Cross-thread TET-Zombieload: the genuine §4.3.2 topology, with the
//! victim and the attacker running as *concurrent programs* on the two
//! SMT threads of one core.
//!
//! The victim loops over its secret (each load passes the data through
//! the shared line fill buffers); the attacker is a single self-contained
//! program that sweeps all 256 test values, measures each ToTE with the
//! in-window Jcc on the assist-forwarded stale byte, and stores the
//! timings into a results array that the host decodes afterwards. No
//! host-side priming: the only cooperation between the threads is the
//! shared fill buffer, as on real silicon.

use tet_isa::{Addr, Asm, Cond, Inst, Program, Reg};
use tet_uarch::{CpuConfig, RunConfig, SmtMachine};

use crate::analysis::Polarity;
use crate::attacks::LeakedByte;

/// Unmapped attacker address whose faulting load triggers the assist.
const PROBE_BASE: u64 = 0x7f00_dead_0000;

/// Attacker-local results array (256 × 8 bytes).
const RESULTS_BASE: u64 = 0x48_0000;

/// The cross-thread TET-Zombieload attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtZombieload {
    /// Full 0..=255 sweeps per sampled byte (majority-voted).
    pub sweeps: u32,
    /// Fall-through nop padding (occupancy shaping, as in TET-ZBL).
    pub sea_nops: usize,
}

impl Default for SmtZombieload {
    fn default() -> Self {
        SmtZombieload {
            sweeps: 5,
            sea_nops: 60,
        }
    }
}

impl SmtZombieload {
    /// The attacker program: sweeps `rbx` over 0..=255, measuring the
    /// ToTE of the assist-forwarded compare at line offset `offset` and
    /// storing each timing to `results[rbx]`. Returns `(program,
    /// handler_pc)`.
    fn attacker_program(&self, offset: u64) -> (Program, usize) {
        let mut a = Asm::new();
        let loop_top = a.fresh_label();
        let matched = a.fresh_label();
        let done = a.fresh_label();
        a.mov_imm(Reg::Rbx, 0).mov_imm(Reg::R12, RESULTS_BASE);
        a.bind(loop_top)
            .rdtsc()
            .mov_reg(Reg::R8, Reg::Rax)
            .lfence()
            .load_byte_abs(Reg::Rax, PROBE_BASE + (offset % 64)) // assist
            .cmp(Reg::Rax, Reg::Rbx)
            .jcc(Cond::E, matched)
            .nops(self.sea_nops)
            .bind(matched)
            .nop();
        let handler_pc = a.here();
        // Signal handler resumes here: timestamp, store, next test value.
        a.lfence().rdtsc().sub(Reg::Rax, Reg::R8);
        a.raw(Inst::Store {
            src: Reg::Rax,
            addr: Addr::base_index(Reg::R12, Reg::Rbx, 8, 0),
        });
        a.add(Reg::Rbx, 1u64)
            .cmp_imm(Reg::Rbx, 256)
            .jcc(Cond::Ne, loop_top)
            .jmp(done);
        a.bind(done).halt();
        (
            a.assemble().expect("attacker program is closed"),
            handler_pc,
        )
    }

    /// The victim program: `iters` rounds of flushing and reloading its
    /// secret byte, keeping the line in flight through the fill buffers.
    fn victim_program(iters: u64, secret_va: u64) -> Program {
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, iters);
        a.bind(top)
            .clflush_abs(secret_va)
            .load_byte_abs(Reg::R9, secret_va)
            .sub(Reg::Rcx, 1u64)
            .jcc(Cond::Ne, top)
            .halt();
        a.assemble().expect("victim program is closed")
    }

    /// Samples the victim byte at line offset `offset`. The victim's
    /// secret page and value live entirely in the *victim's* address
    /// space; the attacker sees only timing.
    pub fn sample_byte(&self, cfg: &CpuConfig, seed: u64, secret: u8, offset: u64) -> LeakedByte {
        let mut smt = SmtMachine::new(cfg.clone(), seed);

        // Victim (thread 0): its own page, its own secret.
        let victim_page = 0x7100_0000u64;
        let secret_va = victim_page + (offset % 64);
        let pa = smt.map_user_page(0, victim_page);
        smt.phys_mut().write_u8(pa + (offset % 64), secret);

        // Attacker (thread 1): its results array.
        smt.map_user_page(1, RESULTS_BASE);

        let (attacker, handler_pc) = self.attacker_program(offset);
        // Enough victim rounds to outlast the attacker's sweep.
        let victim = Self::victim_program(6000, secret_va);

        let mut votes = vec![0u32; 256];
        let mut cycles = 0u64;
        for sweep in 0..self.sweeps {
            let r = smt.run(
                &victim,
                &attacker,
                &RunConfig::default(),
                &RunConfig {
                    handler_pc: Some(handler_pc),
                    max_cycles: 2_000_000,
                    ..RunConfig::default()
                },
            );
            cycles += r.t1.cycles;
            let _ = sweep;
            // Decode this sweep's results array (MinWins: the triggered
            // Jcc shortens ToTE). The array is contiguous in one page.
            let results_pa = pa_of(&smt, RESULTS_BASE);
            let mut best: Option<(u64, usize)> = None;
            for test in 0..256u64 {
                let t = smt.phys_mut().read_u64(results_pa + test * 8);
                if t == 0 {
                    continue;
                }
                let better = match (best, Polarity::MinWins) {
                    (None, _) => true,
                    (Some((b, _)), _) => t < b,
                };
                if better {
                    best = Some((t, test as usize));
                }
            }
            if let Some((_, winner)) = best {
                votes[winner] += 1;
            }
        }
        let value = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i as u8)
            .unwrap_or(0);
        LeakedByte {
            value,
            votes,
            cycles,
        }
    }
}

/// Physical address of a mapped attacker (thread 1) virtual address.
fn pa_of(smt: &SmtMachine, va: u64) -> u64 {
    smt.aspace(1)
        .translate(va)
        .expect("attacker page is mapped")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_thread_zombieload_leaks_on_vulnerable_core() {
        let leak =
            SmtZombieload::default().sample_byte(&CpuConfig::kaby_lake_i7_7700(), 41, b'Q', 0);
        assert_eq!(
            leak.value,
            b'Q',
            "votes: {:?}",
            leak.votes
                .iter()
                .enumerate()
                .filter(|(_, v)| **v > 0)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_thread_zombieload_fails_on_fixed_core() {
        let leak =
            SmtZombieload::default().sample_byte(&CpuConfig::comet_lake_i9_10980xe(), 41, b'Q', 0);
        assert_ne!(leak.value, b'Q', "MDS-fixed silicon must not leak");
    }

    #[test]
    fn tracks_different_offsets() {
        let attack = SmtZombieload::default();
        let a = attack.sample_byte(&CpuConfig::skylake_i7_6700(), 43, 0x3c, 5);
        assert_eq!(a.value, 0x3c);
    }
}
