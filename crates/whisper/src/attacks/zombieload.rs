//! TET-Zombieload (§4.3.2): sampling stale line-fill-buffer data through
//! the TET channel.
//!
//! The victim's loads pass its data through the shared fill buffers; the
//! attacker's microcode-assisted faulting load transiently forwards the
//! stale bytes, and the in-window Jcc compares them against the test
//! value. Contrary to TET-MD, ToTE becomes **shorter** when the Jcc
//! triggers, so the decoder takes the arg*min*.

use crate::analysis::{ArgmaxDecoder, Polarity};
use crate::attacks::{LeakReport, LeakedByte};
use crate::batch::ProbeMemo;
use crate::gadget::{TetGadget, TetGadgetSpec};
use crate::scenario::{Scenario, VICTIM_PAGE};

/// An unmapped attacker address whose faulting loads trigger the assist.
/// The line offset of the probe selects which stale byte is sampled.
const ZBL_PROBE_BASE: u64 = 0x7f00_dead_0000;

/// The TET-Zombieload attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetZombieload {
    /// Argmax batches per byte.
    pub batches: u32,
}

impl Default for TetZombieload {
    fn default() -> Self {
        TetZombieload { batches: 3 }
    }
}

impl TetZombieload {
    /// Samples the victim byte at line offset `offset` (0..64). The
    /// victim is re-run before every probe, as in the paper's
    /// attacker/victim co-loop.
    pub fn sample_byte(&self, sc: &mut Scenario, offset: u64) -> LeakedByte {
        let cfg = sc.machine.config().clone();
        let probe = ZBL_PROBE_BASE + (offset % 64);
        let gadget = TetGadget::build(TetGadgetSpec::zombieload(probe, &cfg));
        sc.victim_touch(offset);
        for _ in 0..3 {
            gadget.measure(&mut sc.machine, 0);
        }
        // The hint must predict the stale fill-buffer byte at *probe*
        // time — right after each iteration's victim touch — not the
        // clobbered LFB state the warm-up runs leave behind, so it is
        // read architecturally from the victim page (no machine state
        // touched). MDS-fixed cores forward zero instead. Only the
        // measured run is memoized — the victim's touch stays live
        // every iteration so the cache hierarchy (and its DRAM jitter
        // stream position) advances exactly as in the unbatched loop.
        let hint = if sc.machine.config().vuln.lfb_forward {
            sc.machine.read_virt_u8(VICTIM_PAGE + offset) as u64
        } else {
            0
        };
        let mut memo = ProbeMemo::new(&sc.machine, Some(hint));
        let mut cycles = 0u64;
        let decoder = ArgmaxDecoder::new(self.batches, Polarity::MinWins);
        let out = decoder.decode(|test, _| {
            sc.victim_touch(offset);
            let (tote, c) = memo.probe(&mut sc.machine, test as u64, |m| {
                gadget.measure_detailed(m, test as u64)
            })?;
            cycles += c;
            Some(tote)
        });
        LeakedByte {
            value: out.value,
            votes: out.votes,
            cycles,
        }
    }

    /// Samples `len` victim bytes starting at line offset 0.
    pub fn sample(&self, sc: &mut Scenario, len: usize) -> LeakReport {
        let freq = sc.machine.config().freq_ghz;
        let mut recovered = Vec::with_capacity(len);
        let mut cycles = 0u64;
        for i in 0..len {
            let b = self.sample_byte(sc, i as u64);
            recovered.push(b.value);
            cycles += b.cycles;
        }
        LeakReport::new(recovered, cycles, freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOptions;
    use tet_uarch::CpuConfig;

    #[test]
    fn samples_victim_bytes_on_mds_vulnerable_core() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        for (i, b) in b"LFB!".iter().enumerate() {
            sc.set_victim_byte(i as u64, *b);
        }
        let report = TetZombieload::default().sample(&mut sc, 4);
        assert_eq!(report.recovered, b"LFB!");
    }

    #[test]
    fn fails_on_mds_resistant_core() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions::default(),
        );
        for (i, b) in b"LFB!".iter().enumerate() {
            sc.set_victim_byte(i as u64, *b);
        }
        let report = TetZombieload::default().sample(&mut sc, 4);
        assert!(
            !report.succeeded(b"LFB!"),
            "MDS-fixed silicon must not leak, got {:?}",
            report.recovered
        );
    }

    #[test]
    fn tracks_victim_data_changes() {
        let mut sc = Scenario::new(CpuConfig::skylake_i7_6700(), &ScenarioOptions::default());
        sc.set_victim_byte(7, 0x11);
        let a = TetZombieload::default().sample_byte(&mut sc, 7);
        assert_eq!(a.value, 0x11);
        sc.set_victim_byte(7, 0xee);
        let b = TetZombieload::default().sample_byte(&mut sc, 7);
        assert_eq!(b.value, 0xee);
    }
}
