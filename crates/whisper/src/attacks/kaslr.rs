//! TET-KASLR (§4.5): breaking kernel ASLR by mapping detection.
//!
//! A faulting user access to a *mapped* kernel address completes its page
//! walk (and on Intel installs a TLB entry), while an *unmapped* address
//! fails the walk and is retried — measurably extending ToTE. The
//! attacker flushes the TLB, probes every candidate slot with the
//! Listing 2 gadget, and the first mapped slot marks the kernel base.
//!
//! * Under **KPTI** the only surviving user-table mapping is the entry
//!   trampoline at the fixed `+0xe00000` offset, so the probe sweep finds
//!   the trampoline slot and subtracts the offset (the paper locates it
//!   among the 512 candidates "within 1 s").
//! * Under **FLARE** the dummy mappings fool presence probes that merely
//!   complete walks (the prefetch baseline), but their reserved-bit
//!   leaves are *retried like unmapped pages* on the faulting-load path,
//!   so the TET probe still isolates the real image.

use tet_os::layout::{slot_base, KPTI_TRAMPOLINE_OFFSET, NUM_SLOTS, SLOT_SIZE};
use tet_os::Kernel;
use tet_uarch::Machine;

use crate::gadget::{TetGadget, TetGadgetSpec};

/// The outcome of a KASLR break attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct KaslrBreak {
    /// The base the attack recovered, if the probe sweep found a mapped
    /// slot.
    pub found_base: Option<u64>,
    /// Whether `found_base` equals the true randomized base.
    pub success: bool,
    /// Total probes performed.
    pub probes: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Seconds at the model's frequency.
    pub seconds: f64,
    /// Mean ToTE per slot (diagnostics / plotting).
    pub slot_totes: Vec<u64>,
}

/// The TET-KASLR attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetKaslr {
    /// ToTE samples per candidate slot.
    pub samples_per_slot: u32,
    /// Whether the attacker assumes KPTI and probes for the trampoline
    /// (subtracting the fixed offset from the hit).
    pub assume_kpti: bool,
    /// Minimum mapped/unmapped gap (cycles) to accept a detection; below
    /// this the sweep is considered featureless (the Zen 3 case).
    pub min_gap: u64,
}

impl Default for TetKaslr {
    fn default() -> Self {
        TetKaslr {
            samples_per_slot: 1,
            assume_kpti: false,
            min_gap: 12,
        }
    }
}

impl TetKaslr {
    /// Probes all 512 candidate slots and recovers the kernel base.
    ///
    /// `kernel` supplies the ground truth for the `success` field only;
    /// the probe sequence never reads it.
    pub fn break_kaslr(&self, machine: &mut Machine, kernel: &Kernel) -> KaslrBreak {
        let freq = machine.config().freq_ghz;
        let mut slot_totes = Vec::with_capacity(NUM_SLOTS as usize);
        let mut cycles = 0u64;
        let mut probes = 0u64;

        // Warm the probe gadget's code path once (slot 0) so per-slot
        // measurements are not skewed by cold frontend structures.
        let warm = TetGadget::build(TetGadgetSpec::kaslr_probe(slot_base(0)));
        warm.measure(machine, 0);

        for slot in 0..NUM_SLOTS {
            let candidate = slot_base(slot);
            let gadget = TetGadget::build(TetGadgetSpec::kaslr_probe(candidate));
            let mut best = u64::MAX;
            for _ in 0..self.samples_per_slot {
                machine.flush_tlbs();
                if let Some((tote, c)) = gadget.measure_detailed(machine, 0) {
                    best = best.min(tote);
                    cycles += c;
                    probes += 1;
                }
            }
            slot_totes.push(if best == u64::MAX { 0 } else { best });
        }

        let found_base = self.classify(&slot_totes);
        let success = found_base == Some(kernel.base);
        KaslrBreak {
            found_base,
            success,
            probes,
            cycles,
            seconds: cycles as f64 / (freq * 1e9),
            slot_totes,
        }
    }

    /// Classifies the sweep: mapped slots are the cluster measurably
    /// *below the median* (most of the 512 slots are unmapped, so the
    /// median sits on the unmapped level and is robust against
    /// interference outliers); the first mapped slot (minus the
    /// trampoline offset under KPTI) is the base.
    fn classify(&self, slot_totes: &[u64]) -> Option<u64> {
        let mut sorted: Vec<u64> = slot_totes.iter().copied().filter(|&t| t > 0).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let threshold = median.saturating_sub(self.min_gap);
        if sorted[0] >= threshold {
            return None; // featureless sweep (the AMD outcome)
        }
        let first_mapped = slot_totes.iter().position(|&t| t > 0 && t < threshold)? as u64;
        let hit = slot_base(first_mapped);
        if self.assume_kpti {
            let offset_slots = KPTI_TRAMPOLINE_OFFSET / SLOT_SIZE;
            if first_mapped < offset_slots {
                return None;
            }
            Some(hit - KPTI_TRAMPOLINE_OFFSET)
        } else {
            Some(hit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    #[test]
    fn breaks_plain_kaslr_on_comet_lake() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions {
                seed: 7,
                ..ScenarioOptions::default()
            },
        );
        let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert_eq!(result.found_base, Some(sc.kernel.base));
        assert!(result.success);
        assert_eq!(result.probes, 512);
    }

    #[test]
    fn breaks_kaslr_under_kpti() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions {
                seed: 21,
                kpti: true,
                ..ScenarioOptions::default()
            },
        );
        let attack = TetKaslr {
            assume_kpti: true,
            ..TetKaslr::default()
        };
        let result = attack.break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(result.success, "KPTI trampoline must betray the base");
    }

    #[test]
    fn breaks_kaslr_under_flare() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions {
                seed: 33,
                flare: true,
                ..ScenarioOptions::default()
            },
        );
        let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(result.success, "FLARE dummies must not fool the TET probe");
    }

    #[test]
    fn fails_on_zen3() {
        let mut sc = Scenario::new(
            CpuConfig::zen3_ryzen5_5600g(),
            &ScenarioOptions {
                seed: 7,
                ..ScenarioOptions::default()
            },
        );
        let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        assert!(
            !result.success,
            "Zen 3's early fault abort must hide the mapping state \
             (found {:?}, true base {:#x})",
            result.found_base, sc.kernel.base
        );
    }

    #[test]
    fn succeeds_across_seeds() {
        for seed in [1, 99, 512, 77777] {
            let mut sc = Scenario::new(
                CpuConfig::skylake_i7_6700(),
                &ScenarioOptions {
                    seed,
                    ..ScenarioOptions::default()
                },
            );
            let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
            assert!(result.success, "seed {seed} must break");
        }
    }
}
