//! The four TET attacks of the paper: TET-Meltdown, TET-Zombieload,
//! TET-Spectre-RSB and TET-KASLR.

mod kaslr;
mod meltdown;
mod rsb;
mod zombieload;
mod zombieload_smt;

pub use kaslr::{KaslrBreak, TetKaslr};
pub use meltdown::TetMeltdown;
pub use rsb::TetSpectreRsb;
pub use zombieload::TetZombieload;
pub use zombieload_smt::SmtZombieload;

use crate::analysis::{bytes_per_second, error_rate};

/// The outcome of leaking a byte string through a TET attack.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakReport {
    /// Recovered bytes.
    pub recovered: Vec<u8>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Seconds at the model's frequency.
    pub seconds: f64,
    /// Leak throughput.
    pub bytes_per_sec: f64,
}

impl LeakReport {
    pub(crate) fn new(recovered: Vec<u8>, cycles: u64, freq_ghz: f64) -> LeakReport {
        LeakReport {
            seconds: cycles as f64 / (freq_ghz * 1e9),
            bytes_per_sec: bytes_per_second(recovered.len(), cycles, freq_ghz),
            recovered,
            cycles,
        }
    }

    /// Error rate against the expected plaintext.
    pub fn error_against(&self, expected: &[u8]) -> f64 {
        error_rate(expected, &self.recovered)
    }

    /// Table 2 success criterion: strictly more than half of the bytes
    /// recovered correctly.
    pub fn succeeded(&self, expected: &[u8]) -> bool {
        self.error_against(expected) < 0.5
    }
}

/// One leaked byte with decoding diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakedByte {
    /// The decoded value.
    pub value: u8,
    /// Votes per candidate across batches.
    pub votes: Vec<u32>,
    /// Simulated cycles spent on this byte.
    pub cycles: u64,
}
