//! TET-Meltdown (§4.3.1): Meltdown with the TET channel instead of
//! Flush+Reload.
//!
//! Phase 1 triggers the transient execution and the in-window Jcc when
//! the transiently obtained secret equals the test value; phase 2 records
//! the execution time. The argmax of ToTE over the 0..=255 sweep is the
//! secret byte (ToTE is *longer* on the match).

use tet_uarch::Machine;

use crate::analysis::{ArgmaxDecoder, Polarity};
use crate::attacks::{LeakReport, LeakedByte};
use crate::batch::ProbeMemo;
use crate::gadget::{TetGadget, TetGadgetSpec};

/// The TET-Meltdown attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetMeltdown {
    /// Argmax batches per byte.
    pub batches: u32,
    /// Warm-up probes per byte (train the BTB, fill the kernel TLB entry
    /// and pull the secret line in).
    pub warmup: u32,
}

impl Default for TetMeltdown {
    fn default() -> Self {
        TetMeltdown {
            batches: 3,
            warmup: 4,
        }
    }
}

impl TetMeltdown {
    /// Leaks the kernel byte at `addr`.
    pub fn leak_byte(&self, machine: &mut Machine, addr: u64) -> LeakedByte {
        let cfg = machine.config().clone();
        let gadget = TetGadget::build(TetGadgetSpec::meltdown(addr, &cfg));
        for _ in 0..self.warmup {
            gadget.measure(machine, 0);
        }
        // The hint must be read *after* warm-up: forwarding predicts
        // the secret byte only once its line is cache resident.
        let mut memo = ProbeMemo::new(machine, gadget.match_hint(machine));
        let mut cycles = 0u64;
        let decoder = ArgmaxDecoder::new(self.batches, Polarity::MaxWins);
        let out = decoder.decode(|test, _| {
            let (tote, c) = memo.probe(machine, test as u64, |m| {
                gadget.measure_detailed(m, test as u64)
            })?;
            cycles += c;
            Some(tote)
        });
        LeakedByte {
            value: out.value,
            votes: out.votes,
            cycles,
        }
    }

    /// Leaks one byte with early termination: after each batch, if one
    /// candidate already won `confidence` batches, decoding stops.
    /// Matches how tuned PoCs trade batches for throughput without
    /// giving up the majority guarantee.
    pub fn leak_byte_adaptive(
        &self,
        machine: &mut Machine,
        addr: u64,
        confidence: u32,
    ) -> LeakedByte {
        let cfg = machine.config().clone();
        let gadget = TetGadget::build(TetGadgetSpec::meltdown(addr, &cfg));
        for _ in 0..self.warmup {
            gadget.measure(machine, 0);
        }
        let mut memo = ProbeMemo::new(machine, gadget.match_hint(machine));
        let mut cycles = 0u64;
        let mut votes = vec![0u32; 256];
        for _batch in 0..self.batches.max(confidence) {
            let decoder = ArgmaxDecoder::new(1, Polarity::MaxWins);
            let out = decoder.decode(|test, _| {
                let (tote, c) = memo.probe(machine, test as u64, |m| {
                    gadget.measure_detailed(m, test as u64)
                })?;
                cycles += c;
                Some(tote)
            });
            votes[out.value as usize] += 1;
            if votes[out.value as usize] >= confidence {
                break;
            }
        }
        let value = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i as u8)
            .unwrap_or(0);
        LeakedByte {
            value,
            votes,
            cycles,
        }
    }

    /// Leaks `len` consecutive kernel bytes starting at `addr`.
    pub fn leak(&self, machine: &mut Machine, addr: u64, len: usize) -> LeakReport {
        let freq = machine.config().freq_ghz;
        let mut recovered = Vec::with_capacity(len);
        let mut cycles = 0u64;
        for i in 0..len {
            let b = self.leak_byte(machine, addr + i as u64);
            recovered.push(b.value);
            cycles += b.cycles;
        }
        LeakReport::new(recovered, cycles, freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOptions};
    use tet_uarch::CpuConfig;

    #[test]
    fn leaks_the_kernel_secret_on_kaby_lake() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 8);
        assert_eq!(report.recovered, b"WHISPER!");
        assert!(report.succeeded(b"WHISPER!"));
        assert!(report.bytes_per_sec > 0.0);
    }

    #[test]
    fn fails_on_meltdown_resistant_core() {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions::default(),
        );
        let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 8);
        assert!(
            !report.succeeded(b"WHISPER!"),
            "fixed silicon must not leak, got {:?}",
            report.recovered
        );
    }

    #[test]
    fn fails_on_zen3() {
        let mut sc = Scenario::new(CpuConfig::zen3_ryzen5_5600g(), &ScenarioOptions::default());
        let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
        assert!(!report.succeeded(b"WHIS"));
    }

    #[test]
    fn adaptive_leak_matches_and_is_cheaper_when_clean() {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let full = TetMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
        let adaptive =
            TetMeltdown::default().leak_byte_adaptive(&mut sc.machine, sc.kernel_secret_va, 2);
        assert_eq!(adaptive.value, full.value);
        assert!(
            adaptive.cycles < full.cycles,
            "early termination must save probes ({} vs {})",
            adaptive.cycles,
            full.cycles
        );
    }

    #[test]
    fn votes_concentrate_on_the_secret() {
        let mut sc = Scenario::new(CpuConfig::skylake_i7_6700(), &ScenarioOptions::default());
        let b = TetMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
        assert_eq!(b.value, b'W');
        assert_eq!(b.votes[b'W' as usize], 3, "all batches should agree");
    }
}
