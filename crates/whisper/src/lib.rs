//! # Whisper — the transient execution timing (TET) side channel
//!
//! A faithful reproduction of *"Whisper: Timing the Transient Execution
//! to Leak Secrets and Break KASLR"* (DAC 2024) on the deterministic
//! cycle-level CPU simulator of the companion `tet-*` crates.
//!
//! The paper's observation: when a conditional jump **inside a transient
//! execution window** mispredicts, the resulting pipeline stall changes
//! the *total time of the transient execution* (ToTE) — which an attacker
//! measures architecturally with two `rdtsc` reads around the window. No
//! cache probing, no contention setup: the timing of the squash itself is
//! the covert channel.
//!
//! This crate provides:
//!
//! * [`gadget`] — builders for the paper's gadgets: the Figure 1a TET
//!   block (TSX or signal-handler suppression), the Listing 1
//!   Spectre-RSB gadget and the Listing 2 KASLR probe;
//! * [`analysis`] — the ToTE frequency histogram and batched argmax
//!   decoder of Figure 1b;
//! * [`channel`] — TET-CC, the covert channel (§4.1);
//! * [`attacks`] — TET-Meltdown, TET-Zombieload, TET-Spectre-RSB and
//!   TET-KASLR (incl. KPTI, FLARE, and container environments);
//! * [`smt`] — the SMT pipeline-flush covert channel (§4.4);
//! * [`baseline`] — Flush+Reload Meltdown and prefetch/EntryBleed KASLR
//!   probes, for the comparisons in Tables 1 and 2;
//! * [`stealth`] — the persistent-µarch-state measurements behind
//!   Table 1's *stateless / transient-only* claims, plus a cache-attack
//!   detector that flags Flush+Reload but not TET;
//! * [`scenario`] — one-call environment setup (CPU preset + kernel +
//!   secrets).
//!
//! # Quickstart
//!
//! Leak a kernel byte through the TET channel on the simulated i7-7700:
//!
//! ```
//! use whisper::attacks::TetMeltdown;
//! use whisper::scenario::{Scenario, ScenarioOptions};
//! use tet_uarch::CpuConfig;
//!
//! let mut sc = Scenario::new(
//!     CpuConfig::kaby_lake_i7_7700(),
//!     &ScenarioOptions {
//!         kernel_secret: b"S".to_vec(),
//!         ..ScenarioOptions::default()
//!     },
//! );
//! let attack = TetMeltdown::default();
//! let leaked = attack.leak_byte(&mut sc.machine, sc.kernel_secret_va);
//! assert_eq!(leaked.value, b'S');
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod attacks;
pub mod baseline;
pub mod batch;
pub mod channel;
pub mod eval;
pub mod gadget;
pub mod scenario;
pub mod smt;
pub mod stealth;

pub use analysis::{ArgmaxDecoder, Histogram, Polarity};
pub use batch::{FixedRec, ProbeMemo};
pub use gadget::{CompareSource, TetGadget, TetGadgetSpec, TransientBegin};
pub use scenario::{Scenario, ScenarioOptions};
