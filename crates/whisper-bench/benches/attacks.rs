//! Criterion benches: wall-clock cost of each attack primitive on the
//! host — how expensive the reproduction itself is to run.

use criterion::{criterion_group, criterion_main, Criterion};
use tet_uarch::CpuConfig;
use whisper::attacks::{TetKaslr, TetMeltdown, TetSpectreRsb, TetZombieload};
use whisper::channel::TetCovertChannel;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};

fn bench_tote_probe(c: &mut Criterion) {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    gadget.measure(&mut sc.machine, 0);
    c.bench_function("tote_probe_single", |b| {
        b.iter(|| gadget.measure(&mut sc.machine, 0x42))
    });
}

fn bench_leak_byte(c: &mut Criterion) {
    let mut group = c.benchmark_group("leak_byte");
    group.sample_size(10);

    group.bench_function("tet_meltdown", |b| {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let attack = TetMeltdown::default();
        b.iter(|| attack.leak_byte(&mut sc.machine, sc.kernel_secret_va))
    });

    group.bench_function("tet_zombieload", |b| {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        let attack = TetZombieload::default();
        b.iter(|| attack.sample_byte(&mut sc, 0))
    });

    group.bench_function("tet_rsb", |b| {
        let mut sc = Scenario::new(
            CpuConfig::raptor_lake_i9_13900k(),
            &ScenarioOptions::default(),
        );
        let attack = TetSpectreRsb::default();
        b.iter(|| attack.leak_byte(&mut sc.machine, sc.user_secret_va))
    });

    group.bench_function("tet_cc_byte", |b| {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0x77);
        let ch = TetCovertChannel::default();
        b.iter(|| ch.receive_byte(&mut sc))
    });

    group.finish();
}

fn bench_kaslr_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("kaslr");
    group.sample_size(10);
    group.bench_function("tet_kaslr_512_slots", |b| {
        let mut sc = Scenario::new(
            CpuConfig::comet_lake_i9_10980xe(),
            &ScenarioOptions::default(),
        );
        let attack = TetKaslr::default();
        b.iter(|| attack.break_kaslr(&mut sc.machine, &sc.kernel))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tote_probe,
    bench_leak_byte,
    bench_kaslr_sweep
);
criterion_main!(benches);
