//! Criterion benches for the out-of-order core's single-run hot path:
//! the Figure 1a gadget probe (one `Machine::run` through the transient
//! window) and the full covert-channel decode sweep (256 probes through
//! the argmax decoder). These are the two units the de-cloned
//! schedule/execute path is optimized for; `scripts/bench.sh` tracks the
//! same workloads in `BENCH_core.json` via the `bench_core` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use tet_uarch::CpuConfig;
use whisper::channel::TetCovertChannel;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};

fn bench_fig1_gadget_run(c: &mut Criterion) {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
    sc.sender_write(0xa5);
    let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
    gadget.measure(&mut sc.machine, 0); // warm the gadget code once
    c.bench_function("fig1_gadget_machine_run", |b| {
        b.iter(|| gadget.measure(&mut sc.machine, 0xa5))
    });
}

fn bench_channel_decode_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_hotpath");
    group.sample_size(10);
    group.bench_function("channel_decode_sweep_256", |b| {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0x5a);
        // One batch = one full 0..=255 sweep through the decoder.
        let ch = TetCovertChannel::new(1);
        b.iter(|| ch.receive_byte(&mut sc))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_gadget_run, bench_channel_decode_sweep);
criterion_main!(benches);
