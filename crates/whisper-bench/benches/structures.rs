//! Micro-benches for the per-cycle hot-path data structures: cache and
//! TLB set lookup/fill, the DSB µop-cache lookup, BTB-backed branch
//! prediction, and `Machine` construction (which pays the full hierarchy
//! allocation, LLC included). These isolate the structures the indexed
//! O(1) representations replace; `benches/core_hotpath.rs` measures the
//! same work end-to-end through the Figure 1a gadget.

use criterion::{criterion_group, criterion_main, Criterion};
use tet_mem::paging::Pte;
use tet_mem::tlb::{Tlb, TlbConfig};
use tet_mem::{Cache, CacheConfig};
use tet_uarch::frontend::Dsb;
use tet_uarch::{Bpu, BpuConfig, CpuConfig, Machine};

/// L1d-like geometry: 64 sets x 8 ways of 64-byte lines.
fn l1_like() -> Cache {
    Cache::new(CacheConfig::new(64, 8, 4))
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");

    // Hits over a resident working set (the common case: every load and
    // fetch consults L1 first).
    g.bench_function("cache_lookup_hit_x1024", |b| {
        let mut cache = l1_like();
        for i in 0..512u64 {
            cache.fill(i * 64);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..1024u64 {
                if cache.lookup((i % 512) * 64) {
                    hits += 1;
                }
            }
            hits
        })
    });

    // Streaming fills: every insert evicts the set's LRU way.
    g.bench_function("cache_fill_evict_x1024", |b| {
        let mut cache = l1_like();
        let mut next = 0u64;
        b.iter(|| {
            let mut evicted = 0u64;
            for _ in 0..1024 {
                if cache.fill(next * 64).is_some() {
                    evicted += 1;
                }
                next += 1;
            }
            evicted
        })
    });

    g.bench_function("tlb_lookup_hit_x1024", |b| {
        let mut tlb = Tlb::new(TlbConfig::new(16, 4));
        for page in 0..64u64 {
            tlb.fill(page << 12, Pte::user_data(page));
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..1024u64 {
                if tlb.lookup((i % 64) << 12).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");

    // The DSB is consulted once per fetched instruction; a warm gadget
    // loop hits every time.
    g.bench_function("dsb_lookup_hit_x1024", |b| {
        let mut dsb = Dsb::new(1536);
        for pc in 0..32 {
            dsb.insert(pc);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..1024usize {
                if dsb.lookup(i % 32) {
                    hits += 1;
                }
            }
            hits
        })
    });

    // Fetch-time conditional prediction: one BTB lookup + PHT read per
    // branch. Train a small set of branches taken so the BTB is warm.
    g.bench_function("btb_predict_cond_x1024", |b| {
        let mut bpu = Bpu::new(BpuConfig::default());
        for pc in 0..16 {
            for _ in 0..16 {
                bpu.resolve_cond(pc, true, pc + 100);
            }
        }
        b.iter(|| {
            let mut from_btb = 0u64;
            for i in 0..1024usize {
                if bpu.predict_cond(i % 16, i % 16 + 1, i % 16 + 100).from_btb {
                    from_btb += 1;
                }
            }
            from_btb
        })
    });

    g.finish();
}

fn bench_machine_new(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");
    // Pays the full hierarchy construction, LLC included — the cost the
    // chunked covert-channel transmit pays per scenario clone.
    let cfg = CpuConfig::kaby_lake_i7_7700();
    g.bench_function("machine_new", |b| b.iter(|| Machine::new(cfg.clone(), 1)));
    g.finish();
}

criterion_group!(benches, bench_cache, bench_frontend, bench_machine_new);
criterion_main!(benches);
