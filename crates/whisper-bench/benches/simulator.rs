//! Criterion benches: raw simulator throughput (instructions and cycles
//! per host-second) — the substrate cost every experiment pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tet_isa::{Asm, Cond, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig};

fn bench_straight_line(c: &mut Criterion) {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
    let mut a = Asm::new();
    for i in 0..500 {
        a.mov_imm(Reg::Rax, i).add(Reg::Rbx, Reg::Rax);
    }
    a.halt();
    let prog = a.assemble().expect("program is closed");
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(prog.len() as u64));
    group.bench_function("straight_line_1k_insts", |b| {
        b.iter(|| m.run(&prog, &RunConfig::default()))
    });
    group.finish();
}

fn bench_branchy_loop(c: &mut Criterion) {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
    let mut a = Asm::new();
    let top = a.fresh_label();
    a.mov_imm(Reg::Rcx, 200);
    a.bind(top)
        .nops(4)
        .sub(Reg::Rcx, 1u64)
        .jcc(Cond::Ne, top)
        .halt();
    let prog = a.assemble().expect("program is closed");
    c.bench_function("branchy_loop_200_iters", |b| {
        b.iter(|| m.run(&prog, &RunConfig::default()))
    });
}

fn bench_memory_walks(c: &mut Criterion) {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
    for i in 0..16u64 {
        m.map_user_page(0x100_0000 + i * 4096);
    }
    let mut a = Asm::new();
    for i in 0..16u64 {
        a.load_abs(Reg::Rax, 0x100_0000 + i * 4096);
    }
    a.halt();
    let prog = a.assemble().expect("program is closed");
    c.bench_function("tlb_miss_loads_16_pages", |b| {
        b.iter(|| {
            m.flush_tlbs();
            m.run(&prog, &RunConfig::default())
        })
    });
}

criterion_group!(
    benches,
    bench_straight_line,
    bench_branchy_loop,
    bench_memory_walks
);
criterion_main!(benches);
