//! `TET_QUIET=1` must silence *all* stderr chatter uniformly across the
//! experiment binaries: progress lines, `report:`/`export:` notes, the
//! `whisper-top` dashboard, check-mode banners. Stderr is the status
//! channel (results go to stdout), so "quiet" means an empty stderr on
//! a successful run.
//!
//! Running all 15 binaries end-to-end is minutes of work; this test
//! runs a representative cheap subset through the real binaries (via
//! `CARGO_BIN_EXE`) — one plain table bin, one with a live dashboard
//! (`table2_matrix` would take too long, so `sec41_throughput` with a
//! tiny payload covers the `whisper-top` path), and `bench_trend`. The
//! shared helpers (`write_report`, `check_from_args`, `Progress`, `Top`)
//! are the only stderr writers the binaries use, so covering each
//! helper here covers the rest of the fleet.

use std::process::Command;

fn run_quiet(exe: &str, args: &[&str], extra_env: &[(&str, &str)]) -> (String, String) {
    let dir = std::env::temp_dir().join(format!(
        "tet_quiet_{}_{}",
        std::process::id(),
        exe.rsplit('/').next().unwrap_or("bin")
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let mut cmd = Command::new(exe);
    cmd.args(args)
        .env("TET_QUIET", "1")
        // Reports land in a scratch dir so the test never touches the
        // repo's target/reports.
        .env("TET_REPORT_DIR", &dir)
        .current_dir(&dir);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {exe}: {e}"));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "{exe} failed ({:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    std::fs::remove_dir_all(&dir).ok();
    (stdout, stderr)
}

#[test]
fn table1_stateless_is_silent_on_stderr_under_tet_quiet() {
    let (stdout, stderr) = run_quiet(env!("CARGO_BIN_EXE_table1_stateless"), &[], &[]);
    assert!(!stdout.is_empty(), "results still go to stdout");
    assert_eq!(stderr, "", "stderr must be empty under TET_QUIET=1");
}

#[test]
fn sec41_dashboard_is_silent_on_stderr_under_tet_quiet() {
    // A 1-byte payload keeps the run cheap while still exercising the
    // whisper-top dashboard wiring and the --check banner.
    let (stdout, stderr) = run_quiet(
        env!("CARGO_BIN_EXE_sec41_throughput"),
        &["1", "--check", "--threads", "2"],
        &[],
    );
    assert!(!stdout.is_empty(), "results still go to stdout");
    assert_eq!(stderr, "", "stderr must be empty under TET_QUIET=1");
}

#[test]
fn bench_trend_is_silent_on_stderr_under_tet_quiet() {
    // Doctor a two-report lineage; the metrics-level assertions live in
    // whisper_bench::trend — this only checks the stderr contract.
    let dir = std::env::temp_dir().join(format!("tet_quiet_lineage_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut old = tet_obs::RunReport::new("bench_core");
    old.scalar("table2.ns_per_trial", 100.0);
    let mut new = tet_obs::RunReport::new("bench_core");
    new.scalar("table2.ns_per_trial", 101.0);
    let p0 = dir.join("BENCH_baseline.json");
    let p1 = dir.join("BENCH_core.json");
    std::fs::write(&p0, old.to_json()).unwrap();
    std::fs::write(&p1, new.to_json()).unwrap();
    let (stdout, stderr) = run_quiet(
        env!("CARGO_BIN_EXE_bench_trend"),
        &["--gate", p0.to_str().unwrap(), p1.to_str().unwrap()],
        &[],
    );
    std::fs::remove_dir_all(&dir).ok();
    assert!(stdout.contains("ns_per_trial"), "trend table on stdout");
    assert_eq!(stderr, "", "stderr must be empty under TET_QUIET=1");
}
