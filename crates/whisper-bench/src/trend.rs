//! `bench-trend`: per-metric deltas across a lineage of reports.
//!
//! The repository accumulates performance reports in two places: the
//! committed `BENCH_*.json` lineage at the repo root (the long-term
//! record, e.g. `BENCH_baseline.json` → `BENCH_core.json`) and the
//! per-binary `target/reports/*.json` from the current build. This
//! module lines those up per metric key, computes the latest point's
//! delta against the prior points, and surrounds it with a *noise band*
//! estimated from the prior points' spread — so a CI trend gate can
//! distinguish "3% jitter on a noisy container" from "the hot path got
//! 40% slower".
//!
//! Only metrics with a known *direction* (throughput-shaped or
//! latency-shaped host-performance keys, see [`direction_for`]) can
//! regress; everything else — simulated-time results, error rates,
//! counters — is reported as informational.

use std::path::Path;

use tet_obs::RunReport;

use crate::baseline::Direction;

/// A named report in lineage order (oldest first).
pub type SourcedReport = (String, RunReport);

/// Loads reports from explicit paths, in the given (lineage) order.
/// Unreadable or unparsable files are reported as errors.
pub fn load_reports(paths: &[impl AsRef<Path>]) -> Result<Vec<SourcedReport>, String> {
    let mut out = Vec::new();
    for p in paths {
        let p = p.as_ref();
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let rep = RunReport::from_json(&text).map_err(|e| format!("parse {}: {e}", p.display()))?;
        let name = p
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        out.push((name, rep));
    }
    Ok(out)
}

/// The host-performance direction of a metric key, if it has one.
///
/// Latency-shaped (`ns_per_iter`, `ns_per_trial`, wall-clock seconds)
/// keys regress *upward*; throughput-shaped (`*_per_sec`, `speedup`)
/// keys regress *downward*. Simulated-time metrics (e.g.
/// `tet_kaslr.mean_seconds` — deterministic simulated seconds) and
/// everything else return `None` and are never gated.
pub fn direction_for(key: &str) -> Option<Direction> {
    if key.ends_with("ns_per_iter") || key.ends_with("ns_per_trial") {
        return Some(Direction::LowerIsBetter);
    }
    if key.ends_with("threads1_seconds") || key.ends_with("threadsN_seconds") {
        return Some(Direction::LowerIsBetter);
    }
    // The split snapshot-fork legs. Deliberately *not* a generic `_ns`
    // rule: `snapshot_fork.warmup_ns` must stay undirected — sealing
    // for delta restore grows the snapshot clone, and warm-up is paid
    // once per campaign, not per trial.
    if key.ends_with("restore_ns") || key.ends_with("simulate_ns") {
        return Some(Direction::LowerIsBetter);
    }
    if key.ends_with("_per_sec") || key == "sim_cycles_per_sec" || key.ends_with("speedup") {
        // `tet_cc.bytes_per_sec` and friends are *simulated* throughput
        // (deterministic), but a deterministic series has zero spread
        // and zero delta, so gating them is harmless and catching a
        // simulated-throughput change is a feature.
        return Some(Direction::HigherIsBetter);
    }
    None
}

/// Splits a `--lineage a.json,b.json,...` value into paths, preserving
/// the given order exactly. The explicit order *is* the lineage: file
/// mtimes are irrelevant (a rebased or freshly checked-out repo has
/// arbitrary mtimes), and empty segments from stray commas are dropped.
pub fn parse_lineage(spec: &str) -> Vec<std::path::PathBuf> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from)
        .collect()
}

/// One metric's points across the lineage.
#[derive(Debug, Clone)]
pub struct TrendSeries {
    /// Metric key.
    pub key: String,
    /// `(source, value)` in lineage order.
    pub points: Vec<(String, f64)>,
}

/// Collects every scalar metric (plus `sim_cycles_per_sec`) across the
/// reports into per-key series, sorted by key. Keys present in only one
/// report still appear (with a single point).
pub fn collect(reports: &[SourcedReport]) -> Vec<TrendSeries> {
    let mut by_key: std::collections::BTreeMap<String, Vec<(String, f64)>> = Default::default();
    for (src, rep) in reports {
        if let Some(v) = rep.sim_cycles_per_sec {
            by_key
                .entry("sim_cycles_per_sec".to_string())
                .or_default()
                .push((src.clone(), v));
        }
        for (k, &v) in &rep.scalars {
            by_key.entry(k.clone()).or_default().push((src.clone(), v));
        }
    }
    by_key
        .into_iter()
        .map(|(key, points)| TrendSeries { key, points })
        .collect()
}

/// A trend verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendVerdict {
    /// Directed metric, latest point within the noise band.
    Steady,
    /// Directed metric, latest point better than the band.
    Improved,
    /// Directed metric, latest point worse than the band.
    Regressed,
    /// Undirected metric (or a single point): informational only.
    Info,
}

/// One analyzed metric row.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Metric key.
    pub key: String,
    /// Number of points in the series.
    pub n: usize,
    /// Median of the prior (all-but-last) points.
    pub baseline: f64,
    /// The latest point.
    pub current: f64,
    /// `current` vs `baseline`, percent.
    pub delta_pct: f64,
    /// Noise band, percent: the prior points' half-spread relative to
    /// their median, floored at `band_floor_pct`.
    pub band_pct: f64,
    /// Direction, if the key is a host-performance metric.
    pub direction: Option<Direction>,
    /// Verdict.
    pub verdict: TrendVerdict,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Analyzes one series: delta of the last point against the median of
/// the prior points, with a noise band from the prior points' spread
/// (floored at `band_floor_pct`). Series with fewer than two points
/// come back as [`TrendVerdict::Info`] with a zero delta.
pub fn analyze(series: &TrendSeries, band_floor_pct: f64) -> TrendRow {
    let n = series.points.len();
    let direction = direction_for(&series.key);
    if n < 2 {
        let v = series.points.first().map(|p| p.1).unwrap_or(0.0);
        return TrendRow {
            key: series.key.clone(),
            n,
            baseline: v,
            current: v,
            delta_pct: 0.0,
            band_pct: band_floor_pct,
            direction,
            verdict: TrendVerdict::Info,
        };
    }
    let current = series.points[n - 1].1;
    let mut prior: Vec<f64> = series.points[..n - 1].iter().map(|p| p.1).collect();
    prior.sort_by(f64::total_cmp);
    let baseline = median(&prior);
    // Guard every ratio: a zero or non-finite baseline (a report written
    // by an older schema, a 0-trial smoke run) must yield a zero delta
    // and the floor band, never NaN/inf rows or a NaN-poisoned verdict.
    let delta_pct = if baseline.is_finite() && current.is_finite() && baseline.abs() > f64::EPSILON
    {
        (current / baseline - 1.0) * 100.0
    } else {
        0.0
    };
    let spread_pct = if baseline.is_finite() && baseline.abs() > f64::EPSILON {
        (prior[prior.len() - 1] - prior[0]) / 2.0 / baseline.abs() * 100.0
    } else {
        0.0
    };
    let band_pct = if spread_pct.is_finite() {
        spread_pct.max(band_floor_pct)
    } else {
        band_floor_pct
    };
    let verdict = match direction {
        None => TrendVerdict::Info,
        Some(dir) => {
            let worse = match dir {
                Direction::HigherIsBetter => delta_pct < -band_pct,
                Direction::LowerIsBetter => delta_pct > band_pct,
            };
            let better = match dir {
                Direction::HigherIsBetter => delta_pct > band_pct,
                Direction::LowerIsBetter => delta_pct < -band_pct,
            };
            if worse {
                TrendVerdict::Regressed
            } else if better {
                TrendVerdict::Improved
            } else {
                TrendVerdict::Steady
            }
        }
    };
    TrendRow {
        key: series.key.clone(),
        n,
        baseline,
        current,
        delta_pct,
        band_pct,
        direction,
        verdict,
    }
}

/// Analyzes every series.
pub fn analyze_all(series: &[TrendSeries], band_floor_pct: f64) -> Vec<TrendRow> {
    series.iter().map(|s| analyze(s, band_floor_pct)).collect()
}

/// Whether any directed metric regressed past its band — the CI gate.
pub fn any_regressed(rows: &[TrendRow]) -> bool {
    rows.iter().any(|r| r.verdict == TrendVerdict::Regressed)
}

/// Renders the rows as an aligned table (directed metrics first).
pub fn render_table(rows: &[TrendRow]) -> String {
    let mut table = crate::Table::new(&[
        "metric", "n", "baseline", "current", "delta", "band", "trend",
    ]);
    let mut ordered: Vec<&TrendRow> = rows.iter().collect();
    ordered.sort_by_key(|r| (r.direction.is_none(), r.key.clone()));
    for r in ordered {
        let trend = match r.verdict {
            TrendVerdict::Steady => "steady",
            TrendVerdict::Improved => "improved",
            TrendVerdict::Regressed => "REGRESSED",
            TrendVerdict::Info => "info",
        };
        table.row_owned(vec![
            r.key.clone(),
            r.n.to_string(),
            format!("{:.4}", r.baseline),
            format!("{:.4}", r.current),
            format!("{:+.1}%", r.delta_pct),
            format!("±{:.1}%", r.band_pct),
            trend.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(key: &str, values: &[f64]) -> TrendSeries {
        TrendSeries {
            key: key.to_string(),
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("r{i}.json"), v))
                .collect(),
        }
    }

    #[test]
    fn directions_are_classified() {
        assert_eq!(
            direction_for("fig1_probe.ns_per_iter"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            direction_for("table2.ns_per_trial"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            direction_for("sim_cycles_per_sec"),
            Some(Direction::HigherIsBetter)
        );
        assert_eq!(
            direction_for("table2.speedup"),
            Some(Direction::HigherIsBetter)
        );
        assert_eq!(
            direction_for("snapshot_fork.restore_ns"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            direction_for("snapshot_fork.simulate_ns"),
            Some(Direction::LowerIsBetter)
        );
        // Warm-up is amortized once per campaign; it must never gate.
        assert_eq!(direction_for("snapshot_fork.warmup_ns"), None);
        assert_eq!(direction_for("tet_cc.error_rate"), None);
        assert_eq!(direction_for("tet_kaslr.mean_seconds"), None);
        assert_eq!(direction_for("all_match"), None);
    }

    #[test]
    fn explicit_lineage_order_beats_file_mtimes() {
        // --lineage order is authoritative. Write the *newest* lineage
        // entry first so its mtime is the oldest on disk; the loaded
        // order (and thus the trend verdict) must still follow the flag.
        let dir = std::env::temp_dir().join(format!("tet_lineage_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut newest = RunReport::new("bench_core");
        newest.scalar("table2.ns_per_trial", 300.0);
        let mut oldest = RunReport::new("bench_core");
        oldest.scalar("table2.ns_per_trial", 100.0);
        let p_new = dir.join("BENCH_core.json");
        let p_old = dir.join("BENCH_core_pr9.json");
        std::fs::write(&p_new, newest.to_json()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&p_old, oldest.to_json()).unwrap(); // newer mtime

        let spec = format!("{}, {},", p_old.display(), p_new.display());
        let lineage = parse_lineage(&spec);
        assert_eq!(lineage, vec![p_old.clone(), p_new.clone()]);
        let reports = load_reports(&lineage).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(reports[0].0, "BENCH_core_pr9.json");
        assert_eq!(reports[1].0, "BENCH_core.json");
        let rows = analyze_all(&collect(&reports), 10.0);
        let row = rows
            .iter()
            .find(|r| r.key == "table2.ns_per_trial")
            .unwrap();
        // 100 → 300 in lineage order: a regression. Mtime order would
        // have read it backwards as a 3x improvement.
        assert_eq!(row.verdict, TrendVerdict::Regressed);
    }

    #[test]
    fn small_jitter_stays_inside_the_band() {
        // 4% rise on a latency metric, 10% floor: steady.
        let row = analyze(&series("x.ns_per_trial", &[100.0, 104.0]), 10.0);
        assert_eq!(row.verdict, TrendVerdict::Steady);
        assert!((row.delta_pct - 4.0).abs() < 1e-9);
    }

    #[test]
    fn large_regressions_break_the_band_in_the_right_direction() {
        let slow = analyze(&series("x.ns_per_trial", &[100.0, 150.0]), 10.0);
        assert_eq!(slow.verdict, TrendVerdict::Regressed);
        let fast = analyze(&series("x.ns_per_trial", &[100.0, 50.0]), 10.0);
        assert_eq!(fast.verdict, TrendVerdict::Improved);
        // Throughput regresses downward.
        let drop = analyze(&series("sim_cycles_per_sec", &[1e8, 5e7]), 10.0);
        assert_eq!(drop.verdict, TrendVerdict::Regressed);
        assert!(any_regressed(&[drop]));
    }

    #[test]
    fn noisy_history_widens_the_band() {
        // Prior points span 80..120 (median 100, half-spread 20%), so a
        // 15% rise that would break a 5% floor stays inside the band.
        let row = analyze(&series("x.ns_per_iter", &[80.0, 120.0, 100.0, 115.0]), 5.0);
        assert!((row.band_pct - 20.0).abs() < 1e-9, "band {}", row.band_pct);
        assert_eq!(row.verdict, TrendVerdict::Steady);
    }

    #[test]
    fn degenerate_lineages_never_produce_nan_bands() {
        // Empty series, single point, zero baseline, NaN/inf points: all
        // must come back with finite fields and never regress.
        for s in [
            series("x.ns_per_trial", &[]),
            series("x.ns_per_trial", &[42.0]),
            series("x.ns_per_trial", &[0.0, 10.0]),
            series("x.ns_per_trial", &[f64::NAN, 10.0]),
            series("x.ns_per_trial", &[10.0, f64::INFINITY]),
            series("sim_cycles_per_sec", &[0.0, 0.0]),
        ] {
            let row = analyze(&s, 10.0);
            assert!(row.delta_pct.is_finite(), "{}: delta NaN", s.key);
            assert!(row.band_pct.is_finite(), "{}: band NaN", s.key);
            assert_ne!(row.verdict, TrendVerdict::Regressed, "{}", s.key);
            assert!(!any_regressed(&[row]));
        }
    }

    #[test]
    fn undirected_metrics_are_informational() {
        let row = analyze(&series("tet_cc.error_rate", &[0.01, 0.5]), 5.0);
        assert_eq!(row.verdict, TrendVerdict::Info);
        assert!(!any_regressed(&[row]));
    }

    #[test]
    fn collect_unions_keys_across_reports() {
        let mut a = RunReport::new("a");
        a.scalar("x.ns_per_iter", 10.0);
        a.sim_cycles_per_sec = Some(1e8);
        let mut b = RunReport::new("b");
        b.scalar("x.ns_per_iter", 12.0);
        b.scalar("only_b", 1.0);
        let series = collect(&[("a.json".into(), a), ("b.json".into(), b)]);
        let keys: Vec<&str> = series.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(keys, vec!["only_b", "sim_cycles_per_sec", "x.ns_per_iter"]);
        let x = series.iter().find(|s| s.key == "x.ns_per_iter").unwrap();
        assert_eq!(x.points.len(), 2);
        assert_eq!(x.points[0], ("a.json".to_string(), 10.0));
    }

    #[test]
    fn load_reports_round_trips_files_in_order() {
        let dir = std::env::temp_dir().join(format!("tet_trend_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut old = RunReport::new("bench_core");
        old.scalar("table2.ns_per_trial", 100.0);
        let mut new = RunReport::new("bench_core");
        new.scalar("table2.ns_per_trial", 300.0);
        let p0 = dir.join("BENCH_baseline.json");
        let p1 = dir.join("BENCH_core.json");
        std::fs::write(&p0, old.to_json()).unwrap();
        std::fs::write(&p1, new.to_json()).unwrap();
        let reports = load_reports(&[&p0, &p1]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(reports[0].0, "BENCH_baseline.json");
        let rows = analyze_all(&collect(&reports), 10.0);
        let row = rows
            .iter()
            .find(|r| r.key == "table2.ns_per_trial")
            .unwrap();
        assert_eq!(row.verdict, TrendVerdict::Regressed);
        let rendered = render_table(&rows);
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(load_reports(&[dir.join("missing.json")]).is_err());
    }
}
