//! Shared helpers for the experiment binaries: text tables, progress
//! reporting, and machine-readable run reports.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md`'s per-experiment index); run them with
//! `cargo run -p whisper-bench --bin <name>`. Besides the human-readable
//! stdout output, every binary writes a [`RunReport`] JSON file to
//! `target/reports/<bin>.json` (overridable with `TET_REPORT_DIR`) via
//! [`write_report`].

#![warn(missing_docs)]

pub mod baseline;
pub mod telemetry;
pub mod trend;

pub use tet_obs::{Progress, RunReport};

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// use whisper_bench::Table;
///
/// let mut t = Table::new(&["CPU", "result"]);
/// t.row(&["i7-7700", "ok"]);
/// let s = t.render();
/// assert!(s.contains("i7-7700"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with per-column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Consumes a `--check` flag from the argument list; when present, turns
/// on the process-wide retirement differential oracle (DESIGN.md §9), so
/// every simulated run is verified against the `tet-check` reference
/// interpreter. Equivalent to running with `TET_CHECK=1`.
pub fn check_from_args(args: &mut Vec<String>) -> bool {
    let found = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    if found {
        tet_check::enable();
        if !tet_obs::quiet() {
            eprintln!("check mode: every run verified against the reference interpreter");
        }
    }
    found
}

/// Formats a ✓/✗ cell from a success flag (ASCII-safe).
pub fn tick(ok: bool) -> &'static str {
    if ok {
        "yes"
    } else {
        "no"
    }
}

/// Prints a titled section header to stdout.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Writes a run report to `target/reports/<name>.json` (or
/// `TET_REPORT_DIR`) and notes the path on stderr (`TET_QUIET=1`
/// silences the note, not the write). IO failure warns instead of
/// failing the experiment — the report is a byproduct, not the result.
pub fn write_report(report: &RunReport) {
    match report.write_default() {
        Ok(path) => {
            if !tet_obs::quiet() {
                eprintln!("report: {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not write report {:?}: {e}", report.name),
    }
}

/// The directory sidecar exports (`.prom`, `.folded`, flight JSONL)
/// share with the JSON reports: `TET_REPORT_DIR` or `target/reports`,
/// created on demand.
pub fn report_dir() -> std::path::PathBuf {
    let dir = std::env::var_os("TET_REPORT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/reports"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes a sidecar export next to the JSON reports and notes the path
/// on stderr (quiet-gated, like [`write_report`]).
pub fn write_sidecar(name: &str, contents: &str) {
    let path = report_dir().join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => {
            if !tet_obs::quiet() {
                eprintln!("export: {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not write export {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     bbbb"));
        assert!(lines[2].starts_with("xxxx  y"));
    }

    #[test]
    fn tick_values() {
        assert_eq!(tick(true), "yes");
        assert_eq!(tick(false), "no");
    }
}
