//! The `--baseline` regression gate with per-metric diagnostics.
//!
//! `bench_core --baseline PATH` compares the freshly measured report
//! against a previously committed one and fails past a tolerance floor.
//! This module is the comparison itself, factored out of the binary so
//! the verdicts are unit-testable against doctored baseline files and so
//! every failing metric prints *what* regressed — baseline value,
//! current value, relative change, and the tolerance it broke — instead
//! of a bare exit code.

use tet_obs::RunReport;

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-shaped: regressions are *drops* (cycles/sec, speedup).
    HigherIsBetter,
    /// Latency-shaped: regressions are *rises* (ns/trial, seconds).
    LowerIsBetter,
}

/// One gated metric: a key, its direction, and the minimum fraction of
/// baseline performance that still passes (0.7 = "fail below 70%").
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Metric key (`sim_cycles_per_sec` or a scalar/counter key).
    pub key: &'static str,
    /// Which way the metric is supposed to move.
    pub direction: Direction,
    /// Minimum acceptable `performance_ratio` (see [`GateOutcome`]).
    pub min_ratio: f64,
}

/// The gates `bench_core --baseline` applies: the historical 70% floor
/// on simulation throughput, per-trial cost, and the decode sweep's
/// wall-clock and per-retired-µop cost (the two axes of the sweep:
/// total time, and time normalized by simulated work so template
/// caching or batching wins don't mask per-µop regressions).
pub fn bench_core_gates() -> Vec<Gate> {
    vec![
        Gate {
            key: "sim_cycles_per_sec",
            direction: Direction::HigherIsBetter,
            min_ratio: 0.7,
        },
        Gate {
            key: "table2.ns_per_trial",
            direction: Direction::LowerIsBetter,
            min_ratio: 0.7,
        },
        Gate {
            key: "decode_sweep.ns_per_iter",
            direction: Direction::LowerIsBetter,
            min_ratio: 0.7,
        },
        Gate {
            key: "decode_sweep.ns_per_uop",
            direction: Direction::LowerIsBetter,
            min_ratio: 0.7,
        },
        Gate {
            key: "snapshot_fork.ns_per_trial",
            direction: Direction::LowerIsBetter,
            min_ratio: 0.7,
        },
        // The restore leg on its own: delta restore makes it a small
        // slice of a trial, so a restore-path regression could hide
        // inside `ns_per_trial` noise without this gate.
        Gate {
            key: "snapshot_fork.restore_ns",
            direction: Direction::LowerIsBetter,
            min_ratio: 0.7,
        },
    ]
}

/// One gate's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Pass,
    /// Past the tolerance floor.
    Regressed,
    /// The metric was missing (or non-positive) on either side.
    Skipped,
}

/// A gate evaluated against one (baseline, current) report pair.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Metric key.
    pub key: String,
    /// Baseline value, if present.
    pub baseline: Option<f64>,
    /// Current value, if present.
    pub current: Option<f64>,
    /// Current performance as a fraction of baseline performance
    /// (>= 1 means at least as good, direction-normalized).
    pub performance_ratio: Option<f64>,
    /// The gate's floor on `performance_ratio`.
    pub min_ratio: f64,
    /// Pass / regressed / skipped.
    pub verdict: Verdict,
}

/// Looks a gate metric up in a report: the dedicated
/// `sim_cycles_per_sec` field, then scalars, then counters.
pub fn metric(rep: &RunReport, key: &str) -> Option<f64> {
    if key == "sim_cycles_per_sec" {
        return rep.sim_cycles_per_sec;
    }
    rep.scalars
        .get(key)
        .copied()
        .or_else(|| rep.counters.get(key).map(|&v| v as f64))
}

/// Evaluates one gate.
pub fn evaluate(gate: &Gate, base: &RunReport, current: &RunReport) -> GateOutcome {
    let b = metric(base, gate.key);
    let c = metric(current, gate.key);
    let (performance_ratio, verdict) = match (b, c) {
        (Some(old), Some(new)) if old > 0.0 && new > 0.0 => {
            let ratio = match gate.direction {
                Direction::HigherIsBetter => new / old,
                Direction::LowerIsBetter => old / new,
            };
            let verdict = if ratio >= gate.min_ratio {
                Verdict::Pass
            } else {
                Verdict::Regressed
            };
            (Some(ratio), verdict)
        }
        _ => (None, Verdict::Skipped),
    };
    GateOutcome {
        key: gate.key.to_string(),
        baseline: b,
        current: c,
        performance_ratio,
        min_ratio: gate.min_ratio,
        verdict,
    }
}

/// Evaluates every gate.
pub fn run_gates(gates: &[Gate], base: &RunReport, current: &RunReport) -> Vec<GateOutcome> {
    gates.iter().map(|g| evaluate(g, base, current)).collect()
}

/// Whether any gate regressed.
pub fn any_regressed(outcomes: &[GateOutcome]) -> bool {
    outcomes.iter().any(|o| o.verdict == Verdict::Regressed)
}

impl GateOutcome {
    /// One diagnostic line: baseline vs current, relative change, and
    /// the tolerance — explicit enough that a CI log alone says what
    /// regressed and by how much.
    pub fn render(&self) -> String {
        match (self.baseline, self.current, self.performance_ratio) {
            (Some(old), Some(new), Some(ratio)) => {
                let delta_pct = (new / old - 1.0) * 100.0;
                let status = match self.verdict {
                    Verdict::Pass => "pass".to_string(),
                    Verdict::Regressed => format!(
                        "REGRESSION ({:.0}% of baseline performance, floor {:.0}%)",
                        ratio * 100.0,
                        self.min_ratio * 100.0
                    ),
                    Verdict::Skipped => "skipped".to_string(),
                };
                format!(
                    "  {}: baseline {old:.6}, current {new:.6} ({delta_pct:+.1}%, tolerance {:.0}%) — {status}",
                    self.key,
                    self.min_ratio * 100.0
                )
            }
            _ => format!(
                "  {}: skipped (baseline={:?} current={:?})",
                self.key, self.baseline, self.current
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rate: Option<f64>, ns_per_trial: Option<f64>) -> RunReport {
        let mut r = RunReport::new("bench_core");
        r.sim_cycles_per_sec = rate;
        if let Some(ns) = ns_per_trial {
            r.scalar("table2.ns_per_trial", ns);
            // The decode-sweep and snapshot-fork gates scale with the
            // same latency figure so one knob drives all LowerIsBetter
            // gates in tests.
            r.scalar("decode_sweep.ns_per_iter", ns * 100.0);
            r.scalar("decode_sweep.ns_per_uop", ns / 10.0);
            r.scalar("snapshot_fork.ns_per_trial", ns * 50.0);
            r.scalar("snapshot_fork.restore_ns", ns * 5.0);
        }
        r
    }

    #[test]
    fn doctored_baseline_file_names_the_failing_metric() {
        // Doctor a baseline claiming 10x our throughput and 1/10 our
        // trial cost, round-trip it through disk like `--baseline` does,
        // and check both gates fail with explicit diagnostics.
        let doctored = report(Some(1e9), Some(50.0));
        let dir = std::env::temp_dir().join(format!("tet_baseline_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_doctored.json");
        std::fs::write(&path, doctored.to_json()).unwrap();
        let base = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let current = report(Some(1e8), Some(500.0));
        let outcomes = run_gates(&bench_core_gates(), &base, &current);
        assert!(any_regressed(&outcomes));
        for o in &outcomes {
            assert_eq!(o.verdict, Verdict::Regressed, "{}", o.key);
            let line = o.render();
            assert!(line.contains(&o.key), "{line}");
            assert!(line.contains("REGRESSION"), "{line}");
            assert!(line.contains("baseline"), "{line}");
            assert!(line.contains("tolerance"), "{line}");
        }
        // The throughput line carries both values and the floor.
        let line = outcomes[0].render();
        assert!(line.contains("1000000000"), "{line}");
        assert!(line.contains("100000000"), "{line}");
        assert!(line.contains("floor 70%"), "{line}");
    }

    #[test]
    fn within_tolerance_passes_both_directions() {
        let base = report(Some(1e8), Some(100.0));
        // 20% slower on both axes: inside the 70% floor.
        let current = report(Some(8e7), Some(125.0));
        let outcomes = run_gates(&bench_core_gates(), &base, &current);
        assert!(!any_regressed(&outcomes));
        assert!(outcomes.iter().all(|o| o.verdict == Verdict::Pass));
    }

    #[test]
    fn exact_floor_boundary_passes() {
        let base = report(Some(1e8), None);
        let current = report(Some(7e7), None);
        let o = evaluate(&bench_core_gates()[0], &base, &current);
        assert_eq!(o.verdict, Verdict::Pass, "ratio == floor passes");
    }

    #[test]
    fn missing_metrics_skip_instead_of_failing() {
        let base = report(None, Some(100.0));
        let current = report(Some(1e8), None);
        let outcomes = run_gates(&bench_core_gates(), &base, &current);
        assert!(outcomes.iter().all(|o| o.verdict == Verdict::Skipped));
        assert!(!any_regressed(&outcomes));
        assert!(outcomes[0].render().contains("skipped"));
    }
}
