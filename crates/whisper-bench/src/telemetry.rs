//! Campaign telemetry glue: one object wiring a `tet-metrics`
//! [`FlightRecorder`] and `whisper-top` dashboard (plus an optional
//! sharded metrics registry) to the fan-out observers the experiment
//! binaries pass to `run_table2_matrix_observed` and friends.
//!
//! Everything here is host-side observation: observers run after each
//! work item's result is committed (see `tet_par::run_indexed_observed`),
//! dashboards write to stderr, and `TET_QUIET=1` silences them — stdout
//! stays byte-identical with telemetry on or off.

use std::sync::Mutex;

use tet_metrics::{FlightRecorder, FlightSample, MetricsHandle, Top};
use tet_obs::MetricsSection;
use whisper::eval::CellStats;

/// Live telemetry for one campaign of `total` work items.
pub struct Campaign {
    flight: FlightRecorder,
    top: Mutex<Top>,
    metrics: MetricsHandle,
}

impl Campaign {
    /// Creates a campaign dashboard (no registry metrics).
    pub fn new(label: &str, total: u64) -> Campaign {
        Campaign::with_metrics(label, total, MetricsHandle::disabled())
    }

    /// Creates a campaign dashboard that also feeds per-item counters
    /// and histograms into a metrics registry shard.
    pub fn with_metrics(label: &str, total: u64, metrics: MetricsHandle) -> Campaign {
        Campaign {
            flight: FlightRecorder::new(total),
            top: Mutex::new(Top::new(label)),
            metrics,
        }
    }

    /// Records one finished work item from raw counters and redraws the
    /// dashboard if a sampling interval has elapsed. Safe to call from
    /// any worker thread.
    pub fn record(&self, trials: u64, sim_cycles: u64, ff_skipped_cycles: u64) {
        self.flight
            .record_work(trials, sim_cycles, ff_skipped_cycles);
        self.metrics.counter_add("campaign.trials", trials);
        self.metrics.counter_add("campaign.sim_cycles", sim_cycles);
        self.metrics.observe("item.trials", trials);
        self.metrics.observe("item.sim_cycles", sim_cycles);
        if let Some(s) = self.flight.maybe_sample() {
            self.top.lock().unwrap().tick(&s);
        }
    }

    /// Records one finished Table 2 cell (cost counters plus the
    /// PMU-derived event counts behind the dashboard's hit rates).
    pub fn on_cell(&self, cs: &CellStats) {
        self.flight.record_events(
            cs.l1_hits,
            cs.l1_misses,
            cs.dtlb_walks,
            cs.branches,
            cs.br_mispredicts,
        );
        self.record(cs.runs, cs.sim_cycles, cs.ff_skipped_cycles);
    }

    /// Finishes the campaign: takes the final sample, closes the
    /// dashboard line, flushes the JSONL flight log (`TET_FLIGHT=path`),
    /// and exports the flight gauges into `m`. Returns all samples.
    pub fn finish(&self, m: &mut MetricsSection) -> Vec<FlightSample> {
        let samples = self.flight.finish();
        if let Some(last) = samples.last() {
            self.top.lock().unwrap().done(last);
        }
        self.flight.fill_metrics(m);
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_metrics::Registry;

    #[test]
    fn campaign_accumulates_cells_into_flight_and_registry() {
        // TET_QUIET may or may not be set in the test environment; the
        // dashboard writes to stderr either way, never to results.
        let reg = Registry::new();
        let campaign = Campaign::with_metrics("unit-test", 2, reg.handle());
        let cs = CellStats {
            runs: 10,
            sim_cycles: 1000,
            ff_skipped_cycles: 400,
            ff_sprints: 3,
            snapshot_restores: 1,
            l1_hits: 90,
            l1_misses: 10,
            dtlb_walks: 5,
            branches: 50,
            br_mispredicts: 2,
        };
        campaign.on_cell(&cs);
        campaign.on_cell(&cs);
        let mut m = MetricsSection::default();
        let samples = campaign.finish(&mut m);
        assert!(!samples.is_empty());
        let last = samples.last().unwrap();
        assert_eq!(last.done, 2);
        assert_eq!(last.trials, 20);
        assert!((last.ff_skip_ratio - 0.4).abs() < 1e-12);
        assert!((last.l1_hit_rate - 0.9).abs() < 1e-12);
        assert_eq!(m.counters["flight.trials"], 20);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["campaign.trials"], 20);
        assert_eq!(snap.histograms["item.sim_cycles"].count, 2);
    }
}
