//! Table 2 — environment and experiments: the attack success matrix over
//! the five evaluated CPU models, compared cell-by-cell against the
//! paper's reported results.
//!
//! Run: `cargo run -p whisper-bench --bin table2_matrix`

use tet_uarch::CpuConfig;
use whisper::eval::{paper_table2_row, run_table2_row, AttackStatus};
use whisper_bench::{section, write_report, Progress, RunReport, Table};

fn cell(ours: AttackStatus, paper: Option<AttackStatus>) -> String {
    let o = match ours {
        AttackStatus::Success => "Y",
        AttackStatus::Fail => "x",
    };
    match paper {
        None => format!("{o} (paper ?)"),
        Some(p) if p == ours => format!("{o} (= paper)"),
        Some(_) => format!("{o} (DIFFERS)"),
    }
}

fn main() {
    section("Table 2: attack matrix (ours vs paper)");
    let mut table = Table::new(&[
        "CPU",
        "uarch",
        "TET-CC",
        "TET-MD",
        "TET-ZBL",
        "TET-RSB",
        "TET-KASLR",
    ]);
    let mut all_match = true;
    let mut rep = RunReport::new("table2_matrix");
    let presets = CpuConfig::table2_presets();
    let total = presets.len();
    let progress = Progress::new("table2_matrix");
    for (i, cfg) in presets.into_iter().enumerate() {
        let row = run_table2_row(&cfg, 42);
        let paper = paper_table2_row(cfg.name);
        let cells = row.cells();
        table.row_owned(vec![
            row.cpu.to_string(),
            row.uarch.to_string(),
            cell(cells[0], paper[0]),
            cell(cells[1], paper[1]),
            cell(cells[2], paper[2]),
            cell(cells[3], paper[3]),
            cell(cells[4], paper[4]),
        ]);
        all_match &= row.matches_paper();
        let successes = cells
            .iter()
            .filter(|s| matches!(s, AttackStatus::Success))
            .count();
        rep.counter(&format!("attacks_ok.{}", cfg.name), successes as u64);
        progress.step(i + 1, total, row.cpu);
    }
    progress.done();
    print!("{}", table.render());
    println!(
        "\nAll paper-verified cells match: {}",
        whisper_bench::tick(all_match)
    );
    rep.set_meta("table", "2");
    rep.scalar("all_match", f64::from(all_match));
    write_report(&rep);
    assert!(all_match, "Table 2 reproduction must match the paper");
}
