//! Table 2 — environment and experiments: the attack success matrix over
//! the five evaluated CPU models, compared cell-by-cell against the
//! paper's reported results.
//!
//! The matrix fans out one worker task per (CPU, attack) cell via
//! `tet-par`; results are committed in submission order, so the table is
//! byte-identical for any `--threads` setting. While it runs, a
//! `whisper-top` dashboard on stderr tracks trials/sec, fast-forward
//! coverage, cache/TLB/BPU hit rates and the ETA (`TET_QUIET=1`
//! silences it; `TET_FLIGHT=path` appends the telemetry as JSONL).
//!
//! With `TET_METRICS=1` the run also exports a metrics section in the
//! JSON report plus a Prometheus text file next to it; `TET_PROF=1`
//! adds sampled host-time attribution and a collapsed-stack export.
//! All of that is host-side observation — stdout is byte-identical
//! with every combination of those switches.
//!
//! With `--server URL` the binary becomes a thin client of the
//! `whisper-serve` campaign service: it submits the same matrix
//! campaign (`kind=table2_matrix, seed=42`), lets the server compute it
//! (or serve it from the content-addressed result cache), and rebuilds
//! the table from the returned RunReport. stdout is byte-identical to
//! the local mode — server/cache notes go to stderr — so CI can diff
//! the two paths.
//!
//! Run: `cargo run -p whisper-bench --bin table2_matrix [--threads N] [--check]
//!       [--server URL]`

use tet_metrics::{to_prometheus, HostProfiler, ProfHandle, Registry};
use tet_obs::MetricsSection;
use tet_uarch::CpuConfig;
use whisper::eval::{
    paper_table2_row, run_table2_matrix_observed, AttackStatus, CellStats, Table2Row,
};
use whisper_bench::telemetry::Campaign;
use whisper_bench::{check_from_args, section, write_report, write_sidecar, RunReport, Table};

/// Pops `--server URL` from the argument list, if present.
fn server_from_args(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--server")?;
    if i + 1 < args.len() {
        let url = args.remove(i + 1);
        args.remove(i);
        Some(url)
    } else {
        args.remove(i);
        eprintln!("table2_matrix: --server needs a URL (e.g. 127.0.0.1:8044)");
        std::process::exit(2);
    }
}

/// Runs the matrix campaign through a `whisper-serve` instance and
/// reconstructs the per-CPU rows from the served report's
/// `row.<cpu-slug>` meta entries (space-joined `ok`/`FAIL` cells in
/// attack order).
fn matrix_via_server(url: &str) -> Result<(Vec<Table2Row>, CellStats), String> {
    let client = tet_serve::Client::new(url);
    let spec = "{\"kind\": \"table2_matrix\", \"seed\": 42}";
    let (body, was_cached) = client.run_to_report(spec)?;
    eprintln!(
        "  server {url}: {}",
        if was_cached { "cache hit" } else { "cold run" }
    );
    let rep = RunReport::from_json(&body).map_err(|e| format!("parse served report: {e}"))?;
    let mut rows = Vec::new();
    for cfg in CpuConfig::table2_presets() {
        let key = format!("row.{}", CpuConfig::slug_of(cfg.name));
        let line = rep
            .meta
            .get(&key)
            .ok_or_else(|| format!("served report missing {key}"))?;
        let cells: Vec<AttackStatus> = line
            .split_whitespace()
            .map(|tok| {
                if tok == "ok" {
                    AttackStatus::Success
                } else {
                    AttackStatus::Fail
                }
            })
            .collect();
        let [cc, md, zbl, rsb, kaslr] = cells[..]
            .try_into()
            .map_err(|_| format!("served report {key} has {} cells, want 5", cells.len()))?;
        rows.push(Table2Row {
            cpu: cfg.name,
            uarch: cfg.uarch,
            cc,
            md,
            zbl,
            rsb,
            kaslr,
        });
    }
    let counter = |name: &str| rep.counters.get(name).copied().unwrap_or(0);
    let stats = CellStats {
        runs: counter("runs"),
        sim_cycles: counter("sim_cycles"),
        ff_skipped_cycles: counter("ff_skipped_cycles"),
        ..CellStats::default()
    };
    Ok((rows, stats))
}

fn cell(ours: AttackStatus, paper: Option<AttackStatus>) -> String {
    let o = match ours {
        AttackStatus::Success => "Y",
        AttackStatus::Fail => "x",
    };
    match paper {
        None => format!("{o} (paper ?)"),
        Some(p) if p == ours => format!("{o} (= paper)"),
        Some(_) => format!("{o} (DIFFERS)"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    let checked = check_from_args(&mut args);
    let server = server_from_args(&mut args);
    section("Table 2: attack matrix (ours vs paper)");
    println!("  threads: {threads}");
    let mut table = Table::new(&[
        "CPU",
        "uarch",
        "TET-CC",
        "TET-MD",
        "TET-ZBL",
        "TET-RSB",
        "TET-KASLR",
    ]);
    let mut all_match = true;
    let mut rep = RunReport::new("table2_matrix");
    let registry = Registry::from_env(); // TET_METRICS=1
    let profiler = HostProfiler::from_env(); // TET_PROF=1
    let cells_total =
        (CpuConfig::table2_presets().len() * whisper::eval::TABLE2_ATTACKS.len()) as u64;
    let campaign = Campaign::with_metrics(
        "table2",
        cells_total,
        registry
            .as_ref()
            .map_or_else(tet_metrics::MetricsHandle::disabled, |r| r.handle()),
    );
    let prof_handle = profiler
        .as_ref()
        .map_or_else(ProfHandle::disabled, |p| p.handle());
    let started = std::time::Instant::now();
    let (rows, stats) = if let Some(url) = &server {
        matrix_via_server(url).unwrap_or_else(|e| {
            eprintln!("table2_matrix: --server {url}: {e}");
            std::process::exit(1);
        })
    } else {
        run_table2_matrix_observed(42, threads, &prof_handle, |_, cs| campaign.on_cell(cs))
    };
    let wall = started.elapsed();
    for row in &rows {
        let paper = paper_table2_row(row.cpu);
        let cells = row.cells();
        table.row_owned(vec![
            row.cpu.to_string(),
            row.uarch.to_string(),
            cell(cells[0], paper[0]),
            cell(cells[1], paper[1]),
            cell(cells[2], paper[2]),
            cell(cells[3], paper[3]),
            cell(cells[4], paper[4]),
        ]);
        all_match &= row.matches_paper();
        let successes = cells
            .iter()
            .filter(|s| matches!(s, AttackStatus::Success))
            .count();
        rep.counter(&format!("attacks_ok.{}", row.cpu), successes as u64);
    }
    print!("{}", table.render());
    println!(
        "\nAll paper-verified cells match: {}",
        whisper_bench::tick(all_match)
    );
    rep.set_meta("table", "2");
    rep.set_meta("checked", if checked { "yes" } else { "no" });
    rep.set_meta("served", if server.is_some() { "yes" } else { "no" });
    rep.scalar("all_match", f64::from(all_match));
    rep.counter("trials", stats.runs);
    rep.counter("sim_cycles", stats.sim_cycles);
    rep.counter("ff_skipped_cycles", stats.ff_skipped_cycles);
    rep.set_throughput(wall, threads, None);

    // Host-side telemetry exports: the dashboard always closes (stderr,
    // quiet-gated); the metrics section and sidecar files only exist
    // when TET_METRICS=1 / TET_PROF=1 opted in.
    let mut metrics = MetricsSection::default();
    campaign.finish(&mut metrics);
    if let Some(p) = &profiler {
        p.fill_metrics(&mut metrics);
        write_sidecar("table2_matrix.folded", &p.to_folded());
    }
    if let Some(r) = &registry {
        let shards = r.snapshot();
        metrics.counters.extend(shards.counters);
        metrics.gauges.extend(shards.gauges);
        metrics.histograms.extend(shards.histograms);
        write_sidecar("table2_matrix.prom", &to_prometheus(&metrics));
    }
    if registry.is_some() || profiler.is_some() {
        rep.set_metrics(metrics);
    }

    write_report(&rep);
    assert!(all_match, "Table 2 reproduction must match the paper");
}
