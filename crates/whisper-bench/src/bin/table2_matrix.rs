//! Table 2 — environment and experiments: the attack success matrix over
//! the five evaluated CPU models, compared cell-by-cell against the
//! paper's reported results.
//!
//! The matrix fans out one worker task per (CPU, attack) cell via
//! `tet-par`; results are committed in submission order, so the table is
//! byte-identical for any `--threads` setting.
//!
//! Run: `cargo run -p whisper-bench --bin table2_matrix [--threads N] [--check]`

use whisper::eval::{paper_table2_row, run_table2_matrix, AttackStatus};
use whisper_bench::{check_from_args, section, write_report, RunReport, Table};

fn cell(ours: AttackStatus, paper: Option<AttackStatus>) -> String {
    let o = match ours {
        AttackStatus::Success => "Y",
        AttackStatus::Fail => "x",
    };
    match paper {
        None => format!("{o} (paper ?)"),
        Some(p) if p == ours => format!("{o} (= paper)"),
        Some(_) => format!("{o} (DIFFERS)"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    let checked = check_from_args(&mut args);
    section("Table 2: attack matrix (ours vs paper)");
    println!("  threads: {threads}");
    let mut table = Table::new(&[
        "CPU",
        "uarch",
        "TET-CC",
        "TET-MD",
        "TET-ZBL",
        "TET-RSB",
        "TET-KASLR",
    ]);
    let mut all_match = true;
    let mut rep = RunReport::new("table2_matrix");
    let started = std::time::Instant::now();
    let rows = run_table2_matrix(42, threads);
    let wall = started.elapsed();
    for row in &rows {
        let paper = paper_table2_row(row.cpu);
        let cells = row.cells();
        table.row_owned(vec![
            row.cpu.to_string(),
            row.uarch.to_string(),
            cell(cells[0], paper[0]),
            cell(cells[1], paper[1]),
            cell(cells[2], paper[2]),
            cell(cells[3], paper[3]),
            cell(cells[4], paper[4]),
        ]);
        all_match &= row.matches_paper();
        let successes = cells
            .iter()
            .filter(|s| matches!(s, AttackStatus::Success))
            .count();
        rep.counter(&format!("attacks_ok.{}", row.cpu), successes as u64);
    }
    print!("{}", table.render());
    println!(
        "\nAll paper-verified cells match: {}",
        whisper_bench::tick(all_match)
    );
    rep.set_meta("table", "2");
    rep.set_meta("checked", if checked { "yes" } else { "no" });
    rep.scalar("all_match", f64::from(all_match));
    rep.set_throughput(wall, threads, None);
    write_report(&rep);
    assert!(all_match, "Table 2 reproduction must match the paper");
}
