//! Core hot-path benchmark: times the Figure 1a gadget probe, the full
//! covert-channel decode sweep, and the Table 2 matrix at `--threads 1`
//! vs `--threads N`, then writes the numbers to `BENCH_core.json`
//! (schema-v2 [`RunReport`] JSON) at the repository root.
//!
//! Run: `cargo run --release -p whisper-bench --bin bench_core [--smoke] [--threads N] [--out PATH] [--baseline PATH]`
//!
//! `--smoke` (or `BENCH_SMOKE=1`) cuts iteration counts so CI can track
//! the numbers in seconds rather than minutes; the JSON shape is
//! identical, with `meta.mode = "smoke"` marking the cheap run.
//!
//! `--baseline PATH` compares the measured `sim_cycles_per_sec` and
//! `table2.ns_per_trial` against a previously committed report and exits
//! non-zero when either regresses past the 70% floor (the report is
//! still written first so CI can upload it as an artifact). Each gate
//! prints its baseline, current value, and tolerance (see
//! `whisper_bench::baseline`).
//!
//! A final self-profile section reruns the matrix with the sampled
//! host-time profiler installed (separate from the timed legs, which
//! stay unprofiled) and exports `bench_core.folded` (collapsed stacks
//! for flamegraphs) and `bench_core.prom` (Prometheus text) next to the
//! JSON reports.

use std::time::Instant;

use tet_metrics::{prof, to_prometheus, HostProfiler};
use tet_obs::MetricsSection;
use tet_uarch::{CpuConfig, Machine};
use whisper::channel::TetCovertChannel;
use whisper::eval::{run_table2_matrix_detailed, run_table2_matrix_observed};
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::telemetry::Campaign;
use whisper_bench::{baseline, section, write_sidecar, RunReport};

/// Median ns/iteration over `samples` timing windows of `iters` calls.
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        medians.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    medians.sort_by(f64::total_cmp);
    medians[medians.len() / 2]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_core.json".to_string());

    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());

    let mut rep = RunReport::new("bench_core");
    rep.set_meta("mode", if smoke { "smoke" } else { "full" });
    rep.host_available_parallelism = Some(tet_par::default_threads() as u64);
    let started = Instant::now();
    // Simulated-cycles-per-host-second, measured on the decode sweep (the
    // dominant single-thread workload of every experiment binary).
    let mut sim_rate = None;
    // The unprofiled matrix result and trial count, compared against the
    // self-profile leg to prove profiling never perturbs results.
    let matrix_rows;
    let matrix_trials;

    section("fig1 gadget probe (one Machine::run through the transient window)");
    {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(0xa5);
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        gadget.measure(&mut sc.machine, 0); // warm
        let (samples, iters) = if smoke { (5, 200) } else { (15, 2000) };
        let ns = median_ns(samples, iters, || {
            gadget.measure(&mut sc.machine, 0xa5);
        });
        println!("  {ns:.0} ns/iter (median of {samples} x {iters})");
        rep.scalar("fig1_probe.ns_per_iter", ns);
    }

    section("covert-channel decode sweep (256 probes, argmax)");
    {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0x5a);
        let ch = TetCovertChannel::new(1);
        let (samples, iters) = if smoke { (3, 2) } else { (7, 5) };
        let ns = median_ns(samples, iters, || {
            ch.receive_byte(&mut sc);
        });
        // One instrumented sweep: its retired-µop count turns the
        // wall-clock figure into a per-µop cost, the number that stays
        // comparable when batching replays trials instead of
        // simulating them (replays retire nothing but are billed the
        // recorded counters, so the µop count matches the unbatched
        // sweep).
        let pmu_before = sc.machine.pmu_lifetime().clone();
        let (_, cycles_per_sweep) = ch.receive_byte(&mut sc);
        let uops_per_sweep = sc
            .machine
            .pmu_lifetime()
            .delta(&pmu_before)
            .count(tet_pmu::Event::UopsRetiredAll);
        let ns_per_uop = ns / uops_per_sweep.max(1) as f64;
        if ns > 0.0 {
            sim_rate = Some(cycles_per_sweep as f64 / (ns * 1e-9));
        }
        println!("  {ns:.0} ns/iter (median of {samples} x {iters})");
        println!("  {ns_per_uop:.1} ns/µop over {uops_per_sweep} retired µops per sweep");
        rep.scalar("decode_sweep.ns_per_iter", ns);
        rep.scalar("decode_sweep.ns_per_uop", ns_per_uop);
        rep.counter("decode_sweep.retired_uops", uops_per_sweep);
        rep.counter("decode_sweep.sim_cycles", cycles_per_sweep);
    }

    section("snapshot fork trial (restore + probe from a shared snapshot)");
    {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        // The once-per-campaign warm-up (cold measure through the
        // transient window plus freezing the warm state into a
        // snapshot) is timed separately from the per-trial loop — it
        // amortizes across every forked trial, so folding it into the
        // trial median would both inflate the trial figure and hide
        // warm-up regressions.
        let (warmup_samples, trial_iters) = if smoke { (3, 200) } else { (7, 2000) };
        let samples = if smoke { 5 } else { 15 };
        let mut warmups = Vec::with_capacity(warmup_samples);
        for _ in 0..warmup_samples {
            let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
            sc.sender_write(0xa5);
            let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
            let t = Instant::now();
            gadget.measure(&mut sc.machine, 0);
            let snap = sc.machine.snapshot();
            warmups.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(&snap);
        }
        warmups.sort_by(f64::total_cmp);
        let warmup_ns = warmups[warmups.len() / 2];

        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(0xa5);
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        gadget.measure(&mut sc.machine, 0); // warm, then freeze the warm state
        let snap = sc.machine.snapshot();
        let mut m = Machine::from_snapshot(&snap);
        // The combined restore+probe loop stays untouched for lineage
        // comparability: `ns_per_trial` means the same thing it meant in
        // every committed report.
        let ns = median_ns(samples, trial_iters, || {
            m.restore(&snap);
            gadget.measure(&mut m, 0xa5);
        });
        // Paired timers split the same trial into its two legs, so a
        // restore-path regression cannot hide behind simulation time
        // (restore is a small slice of a trial once restores are
        // O(touched)). Medians over the same sample windows.
        let (restore_ns, simulate_ns) = {
            let mut restore_meds = Vec::with_capacity(samples);
            let mut simulate_meds = Vec::with_capacity(samples);
            for _ in 0..samples {
                let (mut rest, mut sim) = (0u64, 0u64);
                for _ in 0..trial_iters {
                    let t = Instant::now();
                    m.restore(&snap);
                    rest += t.elapsed().as_nanos() as u64;
                    let t = Instant::now();
                    gadget.measure(&mut m, 0xa5);
                    sim += t.elapsed().as_nanos() as u64;
                }
                restore_meds.push(rest as f64 / trial_iters as f64);
                simulate_meds.push(sim as f64 / trial_iters as f64);
            }
            restore_meds.sort_by(f64::total_cmp);
            simulate_meds.sort_by(f64::total_cmp);
            (
                restore_meds[restore_meds.len() / 2],
                simulate_meds[simulate_meds.len() / 2],
            )
        };
        let stats = m.stats();
        println!(
            "  {ns:.0} ns/trial (median of {samples} x {trial_iters}), \
             {} restores, {} cycles fast-forwarded",
            stats.snapshot_restores, stats.ff_skipped_cycles
        );
        println!("  {restore_ns:.0} ns restore + {simulate_ns:.0} ns simulate (split legs)");
        println!(
            "  {warmup_ns:.0} ns warm-up (cold measure + snapshot, median of {warmup_samples})"
        );
        rep.scalar("snapshot_fork.ns_per_trial", ns);
        rep.scalar("snapshot_fork.restore_ns", restore_ns);
        rep.scalar("snapshot_fork.simulate_ns", simulate_ns);
        rep.scalar("snapshot_fork.warmup_ns", warmup_ns);
        rep.counter("snapshot_fork.restores", stats.snapshot_restores);
        rep.counter("snapshot_fork.ff_skipped_cycles", stats.ff_skipped_cycles);
    }

    // The parallel legs run on min(requested, host) workers: on a
    // 1-CPU container the old `threads.max(8)` label made
    // `table2.speedup` look like an 8-way result that mysteriously
    // delivered 1x. `threads_n` records the *effective* worker count
    // (what the speedup is relative to) and `threads_requested` keeps
    // the asked-for fan-out.
    let requested = threads.max(8);
    let host = tet_par::default_threads().max(1);
    let effective = requested.min(host);

    section("Table 2 matrix wall time (threads 1 vs N)");
    {
        let t1 = Instant::now();
        let (serial, stats) = run_table2_matrix_detailed(42, 1);
        let serial_s = t1.elapsed().as_secs_f64();
        let ns_per_trial = serial_s * 1e9 / stats.runs.max(1) as f64;
        if host == 1 {
            // A 1-CPU host reruns the exact same serial matrix on the
            // "parallel" leg: the 0.88x "speedup" that measures is
            // scheduler noise, not parallel scaling. Skip the leg and
            // leave `table2.speedup`/`threadsN_seconds` absent — gates
            // and trend rows skip missing metrics instead of gating on
            // a misleading number.
            println!(
                "  threads=1: {serial_s:.3} s   {ns_per_trial:.0} ns/trial over {} trials \
                 (single-CPU host: parallel leg skipped, speedup not measured)",
                stats.runs
            );
        } else {
            let tn = Instant::now();
            let (parallel, _) = run_table2_matrix_detailed(42, effective);
            let parallel_s = tn.elapsed().as_secs_f64();
            assert_eq!(serial, parallel, "matrix must be thread-count invariant");
            println!(
                "  threads=1: {serial_s:.3} s   threads={effective}: {parallel_s:.3} s   \
                 speedup {:.2}x   {:.0} ns/trial over {} trials",
                serial_s / parallel_s,
                ns_per_trial,
                stats.runs
            );
            rep.scalar("table2.threadsN_seconds", parallel_s);
            rep.scalar("table2.speedup", serial_s / parallel_s);
        }
        rep.scalar("table2.threads1_seconds", serial_s);
        rep.scalar("table2.ns_per_trial", ns_per_trial);
        rep.counter("table2.threads_n", effective as u64);
        rep.counter("table2.threads_requested", requested as u64);
        rep.counter("table2.trials", stats.runs);
        rep.counter("table2.sim_cycles", stats.sim_cycles);
        rep.counter("table2.ff_skipped_cycles", stats.ff_skipped_cycles);
        rep.counter("table2.ff_sprints", stats.ff_sprints);
        rep.counter("table2.snapshot_restores", stats.snapshot_restores);
        rep.counter("table2.l1_hits", stats.l1_hits);
        rep.counter("table2.l1_misses", stats.l1_misses);
        rep.counter("table2.dtlb_walks", stats.dtlb_walks);
        rep.counter("table2.branches", stats.branches);
        rep.counter("table2.br_mispredicts", stats.br_mispredicts);
        matrix_rows = serial;
        matrix_trials = stats.runs;
    }

    section("self-profile (sampled host-time attribution, separate leg)");
    {
        // The timed legs above run unprofiled so their numbers are the
        // clean ones; this leg reruns the matrix with the profiler and
        // the campaign dashboard installed and exports the attribution.
        let profiler = HostProfiler::new(prof::sample_every_from_env());
        let campaign = Campaign::new("bench_core", (CpuConfig::table2_presets().len() * 5) as u64);
        let t = Instant::now();
        let (rows, pstats) =
            run_table2_matrix_observed(42, effective, &profiler.handle(), |_, cs| {
                campaign.on_cell(cs)
            });
        let profiled_s = t.elapsed().as_secs_f64();
        assert_eq!(
            rows, matrix_rows,
            "profiled matrix must match the unprofiled one"
        );
        assert_eq!(pstats.runs, matrix_trials, "profiler must not add trials");
        let mut metrics = MetricsSection::default();
        profiler.fill_metrics(&mut metrics);
        campaign.finish(&mut metrics);
        let run_ns = profiler
            .estimate_ns()
            .iter()
            .find(|(s, _)| *s == prof::Stage::Run)
            .map_or(0, |&(_, ns)| ns)
            .max(1);
        for (stage, ns) in profiler.estimate_ns() {
            if ns > 0 && stage != prof::Stage::Run {
                println!(
                    "  {:<16} {:>8.1} ms  ({:>4.1}% of run time)",
                    stage.label(),
                    ns as f64 / 1e6,
                    ns as f64 / run_ns as f64 * 100.0
                );
            }
        }
        println!(
            "  profiled leg: {profiled_s:.3} s at 1-in-{} step sampling",
            profiler.sample_every()
        );
        rep.scalar("self_profile.seconds", profiled_s);
        write_sidecar("bench_core.folded", &profiler.to_folded());
        write_sidecar("bench_core.prom", &to_prometheus(&metrics));
        rep.set_metrics(metrics);
    }

    rep.set_throughput(started.elapsed(), threads, None);
    rep.sim_cycles_per_sec = sim_rate;
    std::fs::write(&out, rep.to_json()).expect("write BENCH_core.json");
    println!("\nwrote {out}");

    // --baseline PATH: regression gate for CI. The report above is always
    // written first so the artifact survives a failing comparison. Every
    // gate prints baseline vs current with its tolerance; any regression
    // exits non-zero.
    if let Some(path) = baseline_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base = RunReport::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        println!("\nbaseline gate against {path}:");
        let outcomes = baseline::run_gates(&baseline::bench_core_gates(), &base, &rep);
        for o in &outcomes {
            println!("{}", o.render());
            if o.verdict == baseline::Verdict::Regressed {
                eprintln!("{}", o.render().trim_start());
            }
        }
        if baseline::any_regressed(&outcomes) {
            std::process::exit(1);
        }
    }
}
