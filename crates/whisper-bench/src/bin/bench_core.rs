//! Core hot-path benchmark: times the Figure 1a gadget probe, the full
//! covert-channel decode sweep, and the Table 2 matrix at `--threads 1`
//! vs `--threads N`, then writes the numbers to `BENCH_core.json`
//! (schema-v2 [`RunReport`] JSON) at the repository root.
//!
//! Run: `cargo run --release -p whisper-bench --bin bench_core [--smoke] [--threads N] [--out PATH] [--baseline PATH]`
//!
//! `--smoke` (or `BENCH_SMOKE=1`) cuts iteration counts so CI can track
//! the numbers in seconds rather than minutes; the JSON shape is
//! identical, with `meta.mode = "smoke"` marking the cheap run.
//!
//! `--baseline PATH` compares the measured `sim_cycles_per_sec` and
//! `table2.ns_per_trial` against a previously committed report and exits
//! non-zero when either regresses past the 70% floor (the report is
//! still written first so CI can upload it as an artifact).

use std::time::Instant;

use tet_uarch::{CpuConfig, Machine};
use whisper::channel::TetCovertChannel;
use whisper::eval::run_table2_matrix_detailed;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, RunReport};

/// Median ns/iteration over `samples` timing windows of `iters` calls.
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        medians.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    medians.sort_by(f64::total_cmp);
    medians[medians.len() / 2]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_core.json".to_string());

    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());

    let mut rep = RunReport::new("bench_core");
    rep.set_meta("mode", if smoke { "smoke" } else { "full" });
    rep.host_available_parallelism = Some(tet_par::default_threads() as u64);
    let started = Instant::now();
    // Simulated-cycles-per-host-second, measured on the decode sweep (the
    // dominant single-thread workload of every experiment binary).
    let mut sim_rate = None;

    section("fig1 gadget probe (one Machine::run through the transient window)");
    {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(0xa5);
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        gadget.measure(&mut sc.machine, 0); // warm
        let (samples, iters) = if smoke { (5, 200) } else { (15, 2000) };
        let ns = median_ns(samples, iters, || {
            gadget.measure(&mut sc.machine, 0xa5);
        });
        println!("  {ns:.0} ns/iter (median of {samples} x {iters})");
        rep.scalar("fig1_probe.ns_per_iter", ns);
    }

    section("covert-channel decode sweep (256 probes, argmax)");
    {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.sender_write(0x5a);
        let ch = TetCovertChannel::new(1);
        let (samples, iters) = if smoke { (3, 2) } else { (7, 5) };
        let ns = median_ns(samples, iters, || {
            ch.receive_byte(&mut sc);
        });
        let (_, cycles_per_sweep) = ch.receive_byte(&mut sc);
        if ns > 0.0 {
            sim_rate = Some(cycles_per_sweep as f64 / (ns * 1e-9));
        }
        println!("  {ns:.0} ns/iter (median of {samples} x {iters})");
        rep.scalar("decode_sweep.ns_per_iter", ns);
        rep.counter("decode_sweep.sim_cycles", cycles_per_sweep);
    }

    section("snapshot fork trial (restore + probe from a shared snapshot)");
    {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(0xa5);
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        gadget.measure(&mut sc.machine, 0); // warm, then freeze the warm state
        let snap = sc.machine.snapshot();
        let mut m = Machine::from_snapshot(&snap);
        let (samples, iters) = if smoke { (5, 200) } else { (15, 2000) };
        let ns = median_ns(samples, iters, || {
            m.restore(&snap);
            gadget.measure(&mut m, 0xa5);
        });
        let stats = m.stats();
        println!(
            "  {ns:.0} ns/trial (median of {samples} x {iters}), \
             {} restores, {} cycles fast-forwarded",
            stats.snapshot_restores, stats.ff_skipped_cycles
        );
        rep.scalar("snapshot_fork.ns_per_trial", ns);
        rep.counter("snapshot_fork.restores", stats.snapshot_restores);
        rep.counter("snapshot_fork.ff_skipped_cycles", stats.ff_skipped_cycles);
    }

    section("Table 2 matrix wall time (threads 1 vs N)");
    {
        // The parallel leg runs on min(requested, host) workers: on a
        // 1-CPU container the old `threads.max(8)` label made
        // `table2.speedup` look like an 8-way result that mysteriously
        // delivered 1x. `threads_n` now records the *effective* worker
        // count (what the speedup is relative to) and
        // `threads_requested` keeps the asked-for fan-out.
        let requested = threads.max(8);
        let host = tet_par::default_threads().max(1);
        let effective = requested.min(host);
        let t1 = Instant::now();
        let (serial, stats) = run_table2_matrix_detailed(42, 1);
        let serial_s = t1.elapsed().as_secs_f64();
        let tn = Instant::now();
        let (parallel, _) = run_table2_matrix_detailed(42, effective);
        let parallel_s = tn.elapsed().as_secs_f64();
        assert_eq!(serial, parallel, "matrix must be thread-count invariant");
        let ns_per_trial = serial_s * 1e9 / stats.runs.max(1) as f64;
        println!(
            "  threads=1: {serial_s:.3} s   threads={effective}: {parallel_s:.3} s   \
             speedup {:.2}x   {:.0} ns/trial over {} trials",
            serial_s / parallel_s,
            ns_per_trial,
            stats.runs
        );
        rep.scalar("table2.threads1_seconds", serial_s);
        rep.scalar("table2.threadsN_seconds", parallel_s);
        rep.scalar("table2.speedup", serial_s / parallel_s);
        rep.scalar("table2.ns_per_trial", ns_per_trial);
        rep.counter("table2.threads_n", effective as u64);
        rep.counter("table2.threads_requested", requested as u64);
        rep.counter("table2.trials", stats.runs);
        rep.counter("table2.sim_cycles", stats.sim_cycles);
        rep.counter("table2.ff_skipped_cycles", stats.ff_skipped_cycles);
        rep.counter("table2.ff_sprints", stats.ff_sprints);
        rep.counter("table2.snapshot_restores", stats.snapshot_restores);
    }

    rep.set_throughput(started.elapsed(), threads, None);
    rep.sim_cycles_per_sec = sim_rate;
    std::fs::write(&out, rep.to_json()).expect("write BENCH_core.json");
    println!("\nwrote {out}");

    // --baseline PATH: regression gate for CI. The report above is always
    // written first so the artifact survives a failing comparison.
    if let Some(path) = baseline {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base = RunReport::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        let mut regressed = false;
        // Throughput gate: fail below 70% of the baseline rate.
        match (base.sim_cycles_per_sec, sim_rate) {
            (Some(old), Some(new)) => {
                println!(
                    "baseline {old:.0} cycles/s, current {new:.0} cycles/s ({:+.1}%)",
                    (new / old - 1.0) * 100.0
                );
                if new < old * 0.7 {
                    eprintln!(
                        "REGRESSION: sim_cycles_per_sec {new:.0} is below 70% of baseline {old:.0}"
                    );
                    regressed = true;
                }
            }
            (old, new) => {
                eprintln!(
                    "baseline check skipped: sim_cycles_per_sec baseline={old:?} current={new:?}"
                );
            }
        }
        // Trial-cost gate: the same 70% floor expressed on latency —
        // fail when a trial costs more than 1/0.7x the baseline.
        let key = "table2.ns_per_trial";
        match (base.scalars.get(key), rep.scalars.get(key)) {
            (Some(&old), Some(&new)) => {
                println!(
                    "baseline {old:.0} ns/trial, current {new:.0} ns/trial ({:+.1}%)",
                    (new / old - 1.0) * 100.0
                );
                if new > old / 0.7 {
                    eprintln!(
                        "REGRESSION: {key} {new:.0} exceeds baseline {old:.0} by more than 1/0.7x"
                    );
                    regressed = true;
                }
            }
            (old, new) => {
                eprintln!("baseline check skipped: {key} baseline={old:?} current={new:?}");
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}
