//! Table 3 — key performance monitor counter values: the per-event
//! deltas between the Jcc-triggered and not-triggered runs of the TET
//! gadget (and mapped vs unmapped for TET-KASLR).
//!
//! The comparison target is the *direction* of each counter's movement;
//! absolute values are testbed-specific.
//!
//! Run: `cargo run -p whisper-bench --bin table3_pmu`

use tet_pmu::{Collector, Event};
use tet_uarch::CpuConfig;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport, Table};

/// Collects averaged per-run counters for the gadget at one test value.
/// Between samples the gadget runs a few de-training probes (as the real
/// 0..=255 sweep does implicitly), so the predictor never trains taken on
/// the in-window Jcc.
fn collect(
    sc: &mut Scenario,
    gadget: &TetGadget,
    test: u64,
    runs: usize,
) -> tet_pmu::toolset::AveragedCounts {
    Collector::new(runs).collect(|run| {
        // The de-train count varies per run so the gshare history context
        // never repeats (a fixed period would train the predictor).
        for d in 0..(3 + run as u64 % 7) {
            let detrain = (run as u64 * 3 + d) % 64;
            if detrain != test {
                gadget.measure(&mut sc.machine, detrain);
            }
        }
        let before = sc.machine.cpu().pmu.snapshot();
        gadget.measure(&mut sc.machine, test);
        sc.machine.cpu().pmu.snapshot().delta(&before)
    })
}

fn print_rows(
    table: &mut Table,
    rep: &mut RunReport,
    scene: &str,
    base: &tet_pmu::toolset::AveragedCounts,
    var: &tet_pmu::toolset::AveragedCounts,
    events: &[Event],
) {
    for e in events {
        rep.scalar(
            &format!("delta.{}.{}", scene.replace(' ', "_"), e.name()),
            var.mean(*e) - base.mean(*e),
        );
        table.row_owned(vec![
            scene.to_string(),
            e.name().to_string(),
            format!("{:.1}", base.mean(*e)),
            format!("{:.1}", var.mean(*e)),
            if var.mean(*e) > base.mean(*e) {
                "up".into()
            } else if var.mean(*e) < base.mean(*e) {
                "down".into()
            } else {
                "flat".into()
            },
        ]);
    }
}

fn main() {
    let runs = 16;
    let mut table = Table::new(&[
        "scene",
        "event",
        "Jcc not trigger",
        "Jcc trigger",
        "direction",
    ]);
    let mut rep = RunReport::new("table3_pmu");
    rep.set_meta("table", "3");

    section("Core i7-6700 / TET-CC");
    {
        let cfg = CpuConfig::skylake_i7_6700();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(b'S');
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        for _ in 0..4 {
            gadget.measure(&mut sc.machine, 0);
        }
        let base = collect(&mut sc, &gadget, 0, runs);
        let var = collect(&mut sc, &gadget, b'S' as u64, runs);
        print_rows(
            &mut table,
            &mut rep,
            "i7-6700 TET-CC",
            &base,
            &var,
            &[
                Event::BrMispExecIndirect,
                Event::BrMispExecAllBranches,
                Event::ResourceStallsAny,
            ],
        );
    }

    section("Core i7-7700 / TET-CC (frontend rows)");
    {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(b'S');
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        for _ in 0..4 {
            gadget.measure(&mut sc.machine, 0);
        }
        let base = collect(&mut sc, &gadget, 0, runs);
        let var = collect(&mut sc, &gadget, b'S' as u64, runs);
        print_rows(
            &mut table,
            &mut rep,
            "i7-7700 TET-CC",
            &base,
            &var,
            &[
                Event::BrMispExecIndirect,
                Event::BrMispExecAllBranches,
                Event::IdqDsbUops,
                Event::IdqMsDsbCycles,
                Event::IdqDsbCyclesOk,
                Event::IdqDsbCyclesAny,
                Event::IdqMsMiteUops,
                Event::IdqAllMiteCyclesAnyUops,
                Event::UopsExecutedCoreCyclesNone,
            ],
        );
    }

    section("Core i7-7700 / TET-MD (backend rows)");
    {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let mut sc = Scenario::new(
            cfg.clone(),
            &ScenarioOptions {
                kernel_secret: b"S".to_vec(),
                ..ScenarioOptions::default()
            },
        );
        let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
        for _ in 0..4 {
            gadget.measure(&mut sc.machine, 0);
        }
        let base = collect(&mut sc, &gadget, 0, runs);
        let var = collect(&mut sc, &gadget, b'S' as u64, runs);
        print_rows(
            &mut table,
            &mut rep,
            "i7-7700 TET-MD",
            &base,
            &var,
            &[
                Event::ResourceStallsAny,
                Event::CycleActivityStallsTotal,
                Event::UopsExecutedStallCycles,
                Event::CycleActivityCyclesMemAny,
                Event::IntMiscRecoveryCyclesAny,
                Event::IntMiscClearResteerCycles,
                Event::UopsIssuedAny,
                Event::UopsIssuedStallCycles,
                Event::RsEventsEmptyCycles,
            ],
        );
    }

    section("Ryzen 5 5600G / TET-CC (AMD event names)");
    {
        let cfg = CpuConfig::zen3_ryzen5_5600g();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        sc.sender_write(b'S');
        let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));
        for _ in 0..4 {
            gadget.measure(&mut sc.machine, 0);
        }
        let base = collect(&mut sc, &gadget, 0, runs);
        let var = collect(&mut sc, &gadget, b'S' as u64, runs);
        print_rows(
            &mut table,
            &mut rep,
            "Zen3 TET-CC",
            &base,
            &var,
            &[
                Event::BpL1BtbCorrect,
                Event::BpL1TlbFetchHit,
                Event::DeDisUopQueueEmptyDi0,
                Event::DeDisDispatchTokenStalls2RetireTokenStall,
                Event::IcFw32,
            ],
        );
    }

    print!("{}", table.render());

    section("Core i9-10980XE / TET-KASLR (mapped vs unmapped)");
    {
        let cfg = CpuConfig::comet_lake_i9_10980xe();
        let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
        let mapped = TetGadget::build(TetGadgetSpec::kaslr_probe(sc.kernel.base));
        let unmapped = TetGadget::build(TetGadgetSpec::kaslr_probe(tet_os::layout::slot_base(
            (sc.kernel.slot + sc.kernel.image_slots) % 512,
        )));
        let runs = 8;
        let base = Collector::new(runs).collect(|_| {
            sc.machine.flush_tlbs();
            let before = sc.machine.cpu().pmu.snapshot();
            unmapped.measure(&mut sc.machine, 0);
            sc.machine.cpu().pmu.snapshot().delta(&before)
        });
        let var = Collector::new(runs).collect(|_| {
            sc.machine.flush_tlbs();
            let before = sc.machine.cpu().pmu.snapshot();
            mapped.measure(&mut sc.machine, 0);
            sc.machine.cpu().pmu.snapshot().delta(&before)
        });
        let mut t2 = Table::new(&[
            "event",
            "unmapped",
            "mapped",
            "paper unmapped",
            "paper mapped",
        ]);
        let paper: [(&str, Event, &str, &str); 3] = [
            (
                "DTLB walks",
                Event::DtlbLoadMissesMissCausesAWalk,
                "2",
                "0*",
            ),
            (
                "DTLB walk active",
                Event::DtlbLoadMissesWalkActive,
                "62",
                "0*",
            ),
            ("ITLB walk active", Event::ItlbMissesWalkActive, "19", "0*"),
        ];
        for (_, e, pu, pm) in paper {
            rep.scalar(&format!("kaslr.unmapped.{}", e.name()), base.mean(e));
            rep.scalar(&format!("kaslr.mapped.{}", e.name()), var.mean(e));
            t2.row_owned(vec![
                e.name().to_string(),
                format!("{:.1}", base.mean(e)),
                format!("{:.1}", var.mean(e)),
                pu.into(),
                pm.into(),
            ]);
        }
        print!("{}", t2.render());
        println!("(* the paper's mapped counts are ~0 because the TLB entry persists; our probe\n   flushes the TLB every sample, so 'mapped' shows one non-retried walk instead)");
    }

    write_report(&rep);
}
