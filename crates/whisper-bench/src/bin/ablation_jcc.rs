//! Ablation A3 — Jcc flavours: the paper verifies JE/JZ, JNE/JNZ and JC
//! all carry the TET channel and conjectures every conditional jump
//! does (§1). We sweep all fourteen condition codes.
//!
//! The channel keys on *mispredicted* in-window branches, i.e. on the
//! test values where the condition's outcome differs from its trained
//! prediction. Every test value on the mispredicted side shares the same
//! (longer) ToTE, so the curve is a *plateau* whose interior boundary
//! sits at the secret byte: for equality flavours the plateau is the
//! single point `secret`, for ordered flavours it is a whole range
//! ending (or starting) within ±1 of it. Flavours with no outcome edge
//! over the byte sweep (JO/JNO never/always fire on byte-range operands)
//! carry no signal — also worth demonstrating.
//!
//! Run: `cargo run -p whisper-bench --bin ablation_jcc`

use tet_isa::{Cond, Flags};
use tet_uarch::CpuConfig;
use whisper::analysis::{ArgmaxDecoder, Polarity};
use whisper::gadget::{TetGadget, TetGadgetSpec, TransientBegin};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, tick, write_report, RunReport, Table};

fn main() {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let secret = 0x53u8; // 'S'
    let mut table = Table::new(&[
        "cond",
        "paper",
        "taken for N test values",
        "expected",
        "recovered",
        "leaks",
    ]);
    let mut all_ok = true;
    let mut rep = RunReport::new("ablation_jcc");
    rep.set_meta("ablation", "A3");
    rep.set_meta("cpu", "kaby_lake_i7_7700");

    for &cond in Cond::ALL {
        // The gadget's flags come from `cmp secret, test`.
        let taken_count = (0..=255u8)
            .filter(|&t| cond.eval(Flags::from_sub(secret as u64, t as u64)))
            .count();
        let degenerate = taken_count == 0 || taken_count == 256;

        let mut sc = Scenario::new(
            cfg.clone(),
            &ScenarioOptions {
                kernel_secret: vec![secret],
                ..ScenarioOptions::default()
            },
        );
        let gadget = TetGadget::build(TetGadgetSpec {
            jcc: cond,
            begin: TransientBegin::SignalHandler,
            ..TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg)
        });
        // Train towards the common outcome with a spread of test values.
        for warm in [0u64, 64, 128, 192, 255, 0, 64, 128] {
            gadget.measure(&mut sc.machine, warm);
        }
        let out = ArgmaxDecoder::new(5, Polarity::MaxWins)
            .decode(|test, _| gadget.measure(&mut sc.machine, test as u64));

        // The signal is the *interior edge* of the maximal plateau: all
        // mispredicted test values tie at the long ToTE, and the tie
        // range's boundary away from the sweep edge is the secret. (The
        // plain argmax is ambiguous on an exact tie — its tie-breaking
        // must not be what decides this experiment.)
        let plateau = out.extreme_plateau(Polarity::MaxWins);
        let edge = match (plateau.first(), plateau.last()) {
            (Some(&0), Some(&hi)) => hi,
            (Some(&lo), _) => lo,
            _ => 0,
        };
        let near_secret = (edge as i16 - secret as i16).unsigned_abs() <= 1;
        let ok = if degenerate {
            !near_secret
        } else {
            near_secret
        };
        all_ok &= ok;
        rep.scalar(
            &format!("leaks_as_expected.{}", cond.mnemonic()),
            f64::from(ok),
        );

        let verified = matches!(cond, Cond::E | Cond::Ne | Cond::C);
        table.row_owned(vec![
            cond.mnemonic().to_string(),
            if verified { "verified" } else { "conjectured" }.to_string(),
            taken_count.to_string(),
            if degenerate {
                "no edge -> no leak"
            } else {
                "leak at secret +/-1"
            }
            .to_string(),
            format!("{edge:#04x} (plateau of {})", plateau.len()),
            tick(ok).to_string(),
        ]);
    }

    section("Jcc flavour sweep (secret = 0x53)");
    print!("{}", table.render());
    assert!(
        all_ok,
        "every flavour must behave as its edge structure predicts"
    );
    rep.scalar("all_ok", f64::from(all_ok));
    write_report(&rep);
    println!(
        "\nreproduced: all non-degenerate condition codes leak (the paper's conjecture), and\n\
         the edge-free flavours (jo/jno on byte operands) carry no signal — the channel is\n\
         driven by misprediction, not by any particular instruction."
    );
}
