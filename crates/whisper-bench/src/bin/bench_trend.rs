//! `bench-trend`: performance trends across the report lineage.
//!
//! Lines up metrics across a sequence of `RunReport` JSON files —
//! typically the committed `BENCH_baseline.json` → `BENCH_core.json`
//! lineage, optionally followed by the current build's
//! `target/reports/*.json` — and prints each metric's latest delta with
//! a noise band estimated from the prior points. Host-performance
//! metrics (ns/iter, ns/trial, cycles/sec, speedup) get a direction and
//! can *regress*; everything else is informational.
//!
//! Run: `cargo run -p whisper-bench --bin bench_trend -- \
//!          [--gate] [--band PCT] [--reports DIR] FILE...`
//!
//! * `FILE...` — reports in lineage order (oldest first).
//! * `--lineage a.json,b.json,...` — comma-separated reports prepended
//!   before the positional files, in exactly the given order (file
//!   mtimes are never consulted; a fresh checkout has arbitrary ones).
//! * `--reports DIR` — append every `*.json` in `DIR` (sorted by name)
//!   after the explicit files.
//! * `--band PCT` — noise-band floor in percent (default 10).
//! * `--gate` — exit non-zero when any directed metric's latest point
//!   regresses past its band (the CI trend gate).

use whisper_bench::trend::{self, TrendVerdict};
use whisper_bench::{section, write_report, RunReport};

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 < args.len() {
            let v = args.remove(i + 1);
            args.remove(i);
            return Some(v);
        }
        args.remove(i);
    }
    None
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    args.retain(|a| a != "--gate");
    let band: f64 = take_flag_value(&mut args, "--band")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let reports_dir = take_flag_value(&mut args, "--reports");
    let lineage = take_flag_value(&mut args, "--lineage");

    let mut paths: Vec<std::path::PathBuf> = lineage
        .as_deref()
        .map(trend::parse_lineage)
        .unwrap_or_default();
    paths.extend(args.iter().map(std::path::PathBuf::from));
    if let Some(dir) = &reports_dir {
        // A missing or unreadable --reports dir is an empty contribution,
        // not a crash: on a fresh checkout `target/reports/` does not
        // exist until the first bench run, and the gate must still pass.
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                let mut extra: Vec<std::path::PathBuf> = entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect();
                extra.sort();
                paths.extend(extra);
            }
            Err(e) => eprintln!("bench_trend: --reports {dir}: {e} (treating as empty)"),
        }
    }
    if paths.is_empty() && !gate {
        eprintln!(
            "usage: bench_trend [--gate] [--band PCT] [--lineage A,B,...] [--reports DIR] FILE..."
        );
        std::process::exit(2);
    }

    let reports = trend::load_reports(&paths).unwrap_or_else(|e| {
        eprintln!("bench_trend: {e}");
        std::process::exit(2);
    });
    if reports.len() < 2 {
        // Empty or single-entry lineage: there are no priors to delta
        // against, so there is nothing to gate — trivially pass.
        println!(
            "bench-trend: no priors ({} report(s) in lineage) — nothing to gate",
            reports.len()
        );
        let mut rep = RunReport::new("bench_trend");
        rep.set_meta("gate", if gate { "on" } else { "off" });
        rep.set_meta("no_priors", "true");
        rep.counter("reports", reports.len() as u64);
        write_report(&rep);
        return;
    }
    section("bench-trend: metric deltas across the report lineage");
    println!(
        "  lineage ({} reports, band floor ±{band:.1}%):",
        reports.len()
    );
    for (name, _) in &reports {
        println!("    {name}");
    }
    println!();

    let rows = trend::analyze_all(&trend::collect(&reports), band);
    print!("{}", trend::render_table(&rows));

    let regressed: Vec<&trend::TrendRow> = rows
        .iter()
        .filter(|r| r.verdict == TrendVerdict::Regressed)
        .collect();
    let improved = rows
        .iter()
        .filter(|r| r.verdict == TrendVerdict::Improved)
        .count();
    println!(
        "\n{} metrics, {} regressed, {} improved",
        rows.len(),
        regressed.len(),
        improved
    );

    let mut rep = RunReport::new("bench_trend");
    rep.set_meta("gate", if gate { "on" } else { "off" });
    rep.counter("metrics", rows.len() as u64);
    rep.counter("regressed", regressed.len() as u64);
    rep.counter("improved", improved as u64);
    rep.scalar("band_floor_pct", band);
    write_report(&rep);

    if !regressed.is_empty() {
        for r in &regressed {
            eprintln!(
                "REGRESSED: {} {:.4} -> {:.4} ({:+.1}%, band ±{:.1}%)",
                r.key, r.baseline, r.current, r.delta_pct, r.band_pct
            );
        }
        if gate {
            std::process::exit(1);
        }
    }
}
