//! Figure 4 — control-flow analysis of the transient execution: how
//! `UOPS_ISSUED.ANY` reacts to the trigger as a function of the nop
//! padding *before the mfence* on the fall-through path.
//!
//! The paper's experiment: the not-triggered path runs into an `mfence`
//! that clogs issuance, while the triggered path jumps past it into a
//! fence-free stream. With little padding the trigger path issues *more*
//! µops; once the padding grows enough that the not-triggered path never
//! reaches the fence inside the window, the result flips (the trigger
//! path loses its issue slots to the resteer bubble instead). Recovery
//! cycles rise in the trigger path regardless (the stage-② stall of the
//! paper's CFG).
//!
//! Run: `cargo run -p whisper-bench --bin fig4_flow`

use tet_isa::{Asm, Cond, Program, Reg};
use tet_pmu::{Collector, Event};
use tet_uarch::{CpuConfig, RunConfig, RunExit};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport, Table};

/// The Figure 4 gadget: fall-through = `nops(pre); mfence; nops(post)`,
/// taken target = a fence-free `nops(post)` stream.
///
/// The Jcc condition is architectural (like Figure 1a's
/// `if (test_value == 'S')`) so it resolves *early* in the window, and
/// the window itself is opened by an unmapped probe (slow, retried walk)
/// — giving the trigger path time to refetch and issue into the window.
fn flow_gadget(probe: u64, pre: usize, post: usize) -> (Program, usize) {
    let mut a = Asm::new();
    let taken = a.fresh_label();
    a.rdtsc()
        .mov_reg(Reg::R8, Reg::Rax)
        .lfence()
        .load_byte_abs(Reg::Rax, probe) // faulting load (window)
        .cmp_imm(Reg::Rbx, b'S' as u64) // architectural condition
        .jcc(Cond::E, taken)
        .nops(pre) // ① fall-through path ...
        .mfence() // ... meets a fence
        .nops(post)
        .bind(taken) // ③ trigger path: fence-free stream
        .nops(post);
    let handler = a.here();
    a.lfence().rdtsc().sub(Reg::Rax, Reg::R8).halt();
    (a.assemble().expect("gadget layout is closed"), handler)
}

fn measure(sc: &mut Scenario, prog: &Program, handler: usize, test: u64) -> bool {
    let r = sc.machine.run(
        prog,
        &RunConfig {
            handler_pc: Some(handler),
            init_regs: vec![(Reg::Rbx, test)],
            ..RunConfig::default()
        },
    );
    r.exit == RunExit::Halted
}

fn main() {
    let cfg = CpuConfig::skylake_i7_6700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let probe = 0xffff_ffff_9000_0000u64; // unmapped: slow, wide window
    let post = 160; // longer than the reservation station

    let mut table = Table::new(&[
        "nops before mfence",
        "UOPS_ISSUED (no trig)",
        "UOPS_ISSUED (trig)",
        "delta",
        "RECOVERY (no trig)",
        "RECOVERY (trig)",
    ]);
    let mut deltas = Vec::new();
    for pre in [0usize, 8, 16, 32, 64, 128] {
        let (prog, handler) = flow_gadget(probe, pre, post);
        for _ in 0..4 {
            measure(&mut sc, &prog, handler, 0);
            measure(&mut sc, &prog, handler, b'S' as u64);
        }
        let collect = |sc: &mut Scenario, test: u64| {
            Collector::new(12).collect(|run| {
                // De-train with a varying count so the gshare context
                // never repeats (the real sweep does this implicitly).
                for d in 0..(3 + run as u64 % 7) {
                    let detrain = (run as u64 * 3 + d) % 64;
                    if detrain != test {
                        measure(sc, &prog, handler, detrain);
                    }
                }
                let before = sc.machine.cpu().pmu.snapshot();
                measure(sc, &prog, handler, test);
                sc.machine.cpu().pmu.snapshot().delta(&before)
            })
        };
        let quiet = collect(&mut sc, 0);
        let trig = collect(&mut sc, b'S' as u64);
        let delta = trig.mean(Event::UopsIssuedAny) - quiet.mean(Event::UopsIssuedAny);
        deltas.push((pre, delta));
        table.row_owned(vec![
            pre.to_string(),
            format!("{:.1}", quiet.mean(Event::UopsIssuedAny)),
            format!("{:.1}", trig.mean(Event::UopsIssuedAny)),
            format!("{delta:+.1}"),
            format!("{:.1}", quiet.mean(Event::IntMiscRecoveryCycles)),
            format!("{:.1}", trig.mean(Event::IntMiscRecoveryCycles)),
        ]);
    }

    section("Figure 4: UOPS_ISSUED.ANY vs nop padding before the mfence");
    print!("{}", table.render());

    let first = deltas.first().expect("swept at least one padding").1;
    let last = deltas.last().expect("swept at least one padding").1;
    println!(
        "\nuops-issued delta at {} nops: {:+.1}; at {} nops: {:+.1}",
        deltas[0].0,
        first,
        deltas[deltas.len() - 1].0,
        last
    );
    assert!(
        first > 0.0 && last < 0.0,
        "the paper's sign flip must reproduce (got {first:+.1} .. {last:+.1})"
    );
    println!(
        "reproduced: the trigger path issues MORE uops while the fall-through path is\n\
         fence-blocked, and FEWER once the padding keeps the fence out of the window"
    );

    let mut rep = RunReport::new("fig4_flow");
    rep.set_meta("cpu", "skylake_i7_6700");
    rep.set_meta("figure", "4");
    for (pre, delta) in &deltas {
        rep.scalar(&format!("uops_issued_delta.pre_{pre:03}"), *delta);
    }
    rep.scalar("sign_flip", f64::from(first > 0.0 && last < 0.0));
    write_report(&rep);
}
