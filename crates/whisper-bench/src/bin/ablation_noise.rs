//! Ablation A1 — noise sensitivity: covert-channel error rate versus
//! timer-interrupt rate and versus the number of argmax batches.
//!
//! The paper's batched argmax exists to average away exactly this noise;
//! the expected shape: error grows with interrupt rate and shrinks with
//! more batches.
//!
//! Run: `cargo run --release -p whisper-bench --bin ablation_noise [--threads N]`
//!
//! Both sweeps fan out one independent scenario per parameter value via
//! `tet-par`; output is byte-identical for any `--threads` setting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tet_uarch::CpuConfig;
use whisper::channel::TetCovertChannel;
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport, Table};

fn payload(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..len).map(|_| rng.gen()).collect()
}

fn run(interrupt_period: u64, batches: u32, bytes: usize) -> f64 {
    let mut sc = Scenario::new(
        CpuConfig::kaby_lake_i7_7700(),
        &ScenarioOptions {
            interrupt_period,
            ..ScenarioOptions::default()
        },
    );
    TetCovertChannel::new(batches)
        .transmit(&mut sc, &payload(bytes))
        .error_rate
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    let started = std::time::Instant::now();
    let bytes = 24;
    let mut rep = RunReport::new("ablation_noise");
    rep.set_meta("ablation", "A1");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.counter("payload_bytes", bytes as u64);

    section("Error rate vs timer-interrupt period (batches = 1)");
    let mut t1 = Table::new(&[
        "interrupt period (cycles)",
        "interrupts/probe",
        "error rate",
    ]);
    let periods = [0u64, 20011, 5003, 1201, 401];
    let errs = tet_par::par_map(threads, &periods, |&period| run(period, 1, bytes));
    for (&period, &err) in periods.iter().zip(&errs) {
        rep.scalar(&format!("error_rate.period_{period:05}"), err);
        let per_probe = if period == 0 {
            "0".to_string()
        } else {
            format!("~{:.2}", 300.0 / period as f64)
        };
        t1.row_owned(vec![
            if period == 0 {
                "off".into()
            } else {
                period.to_string()
            },
            per_probe,
            format!("{:.1} %", err * 100.0),
        ]);
    }
    print!("{}", t1.render());
    assert_eq!(errs[0], 0.0, "the noiseless channel must be error-free");
    assert!(
        errs.last().copied().unwrap_or(0.0) > errs[0],
        "heavy interrupt noise must induce errors"
    );

    section("Error rate vs argmax batches (interrupt period = 1201)");
    let mut t2 = Table::new(&["batches", "error rate"]);
    let batch_counts = [1u32, 3, 5, 9];
    let batch_errs = tet_par::par_map(threads, &batch_counts, |&batches| run(1201, batches, bytes));
    for (&batches, &err) in batch_counts.iter().zip(&batch_errs) {
        rep.scalar(&format!("error_rate.batches_{batches}"), err);
        t2.row_owned(vec![batches.to_string(), format!("{:.1} %", err * 100.0)]);
    }
    print!("{}", t2.render());
    assert!(
        batch_errs.last().copied().unwrap_or(1.0) <= batch_errs[0],
        "more batches must not make decoding worse"
    );
    rep.set_throughput(started.elapsed(), threads, None);
    write_report(&rep);
    println!("\nreproduced: the batched argmax buys accuracy back from noise, as in Fig 1b");
}
