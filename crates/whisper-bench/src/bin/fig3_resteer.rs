//! Figure 3 — frontend-issued resteer within transient execution: the
//! per-cycle DSB/MITE µop delivery trace around the in-window mispredict.
//!
//! The paper's Figure 3 shows the frontend switching away from the DSB
//! and stalling when the triggered Jcc resteers it. We print the
//! delivery trace of a triggered and a non-triggered run side by side.
//!
//! Run: `cargo run -p whisper-bench --bin fig3_resteer`

use tet_isa::Reg;
use tet_uarch::{CpuConfig, RunConfig};
use whisper::gadget::{TetGadget, TetGadgetSpec, TransientBegin};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport};

fn trace(sc: &mut Scenario, gadget: &TetGadget, test: u64) -> Vec<tet_uarch::FrontendTraceEntry> {
    let r = sc.machine.run(
        &gadget.program,
        &RunConfig {
            handler_pc: Some(gadget.handler_pc),
            init_regs: vec![(Reg::Rbx, test)],
            trace_frontend: true,
            ..RunConfig::default()
        },
    );
    r.frontend_trace.expect("tracing was requested")
}

fn render(trace: &[tet_uarch::FrontendTraceEntry]) -> String {
    // One character per cycle: D = DSB delivery, M = MITE delivery,
    // . = stalled, space = idle.
    trace
        .iter()
        .map(|e| {
            if e.mite_uops > 0 {
                'M'
            } else if e.dsb_uops > 0 {
                'D'
            } else if e.stalled {
                '.'
            } else {
                '_'
            }
        })
        .collect()
}

fn main() {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let gadget = TetGadget::build(TetGadgetSpec {
        begin: TransientBegin::SignalHandler,
        ..TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg)
    });
    // Steady state first.
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0);
        gadget.measure(&mut sc.machine, b'S' as u64);
    }

    section("Figure 3: frontend delivery per cycle (D=DSB, M=MITE, .=stall, _=idle)");
    let quiet = trace(&mut sc, &gadget, 0);
    let triggered = trace(&mut sc, &gadget, b'S' as u64);
    println!("Jcc not triggered ({} cycles):", quiet.len());
    println!("  {}", render(&quiet));
    println!("Jcc triggered    ({} cycles):", triggered.len());
    println!("  {}", render(&triggered));

    let stall = |t: &[tet_uarch::FrontendTraceEntry]| t.iter().filter(|e| e.stalled).count();
    let dsb = |t: &[tet_uarch::FrontendTraceEntry]| t.iter().map(|e| e.dsb_uops).sum::<usize>();
    println!(
        "\nstall cycles: not-triggered {}, triggered {}",
        stall(&quiet),
        stall(&triggered)
    );
    println!(
        "DSB uops:     not-triggered {}, triggered {}",
        dsb(&quiet),
        dsb(&triggered)
    );
    assert!(
        stall(&triggered) > stall(&quiet),
        "the resteer must add frontend stall cycles"
    );
    assert!(
        triggered.len() > quiet.len(),
        "the triggered run must take longer overall"
    );
    println!("\nreproduced: the in-window resteer stalls the frontend and stretches the run");

    let mut rep = RunReport::new("fig3_resteer");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.set_meta("figure", "3");
    rep.counter("cycles_not_triggered", quiet.len() as u64);
    rep.counter("cycles_triggered", triggered.len() as u64);
    rep.stage("stall_not_triggered", stall(&quiet) as u64);
    rep.stage("stall_triggered", stall(&triggered) as u64);
    rep.counter("dsb_uops_not_triggered", dsb(&quiet) as u64);
    rep.counter("dsb_uops_triggered", dsb(&triggered) as u64);
    write_report(&rep);
}
