//! §4.4 — the SMT covert channel: the trojan signals bits with suppressed
//! page faults; the spy times a nop loop on the sibling thread.
//!
//! Paper: the careful prototype reaches 1 B/s below 5 % error on the
//! i7-7700, and the SecSMT-style aggressive settings reach 268 KB/s at
//! 28 % error. The shape to reproduce: the fast mode is orders of
//! magnitude faster *and* much noisier.
//!
//! Run: `cargo run -p whisper-bench --bin sec44_smt [bits]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tet_uarch::CpuConfig;
use whisper::smt::SmtTetChannel;
use whisper_bench::{section, write_report, RunReport, Table};

fn main() {
    let nbits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let mut rng = StdRng::seed_from_u64(2024);
    let bits: Vec<u8> = (0..nbits).map(|_| rng.gen_range(0..=1)).collect();
    let cfg = CpuConfig::kaby_lake_i7_7700();

    section("SMT covert channel (i7-7700, trojan page faults vs spy nop loop)");
    let mut table = Table::new(&[
        "mode",
        "spy iters/bit",
        "faults/bit",
        "bits",
        "throughput",
        "error",
        "paper",
    ]);

    let proto = SmtTetChannel::prototype();
    let rp = proto.transmit(&cfg, 7, &bits);
    println!(
        "prototype: {} bits, {:.1} bit/s, {:.1}% error",
        bits.len(),
        rp.bits_per_sec,
        rp.bit_error_rate * 100.0
    );
    table.row_owned(vec![
        "prototype".into(),
        proto.spy_iters.to_string(),
        proto.faults_per_bit.to_string(),
        bits.len().to_string(),
        format!("{:.1} bit/s", rp.bits_per_sec),
        format!("{:.1} %", rp.bit_error_rate * 100.0),
        "1 B/s, <5 % err".into(),
    ]);

    let fast = SmtTetChannel::fast();
    let rf = fast.transmit(&cfg, 7, &bits);
    println!(
        "fast (SecSMT-style): {} bits, {:.1} bit/s, {:.1}% error",
        bits.len(),
        rf.bits_per_sec,
        rf.bit_error_rate * 100.0
    );
    table.row_owned(vec![
        "fast (SecSMT-style)".into(),
        fast.spy_iters.to_string(),
        fast.faults_per_bit.to_string(),
        bits.len().to_string(),
        format!("{:.1} bit/s", rf.bits_per_sec),
        format!("{:.1} %", rf.bit_error_rate * 100.0),
        "268 KB/s, 28 % err".into(),
    ]);
    print!("{}", table.render());

    assert!(
        rp.bit_error_rate <= 0.05,
        "prototype must stay below 5% error"
    );
    assert!(
        rf.bits_per_sec > rp.bits_per_sec,
        "the aggressive mode must be faster"
    );
    assert!(
        rf.bit_error_rate >= rp.bit_error_rate,
        "the aggressive mode trades accuracy for speed"
    );
    println!("\nreproduced: speed/accuracy trade-off matches the paper's two operating points");

    whisper_bench::section("Cross-thread TET-Zombieload over the same SMT pair (§4.3.2 topology)");
    {
        use whisper::attacks::SmtZombieload;
        let secret = 0xb7u8;
        let leak = SmtZombieload::default().sample_byte(&cfg, 77, secret, 0);
        println!(
            "  victim (thread 0) byte {:#04x} -> attacker (thread 1) sampled {:#04x}",
            secret, leak.value
        );
        assert_eq!(leak.value, secret, "the fill buffers leak across threads");
        println!("  reproduced: only the shared LFB connects the threads, and it is enough");
    }

    let mut rep = RunReport::new("sec44_smt");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.set_meta("section", "4.4");
    rep.counter("bits", bits.len() as u64);
    rep.scalar("prototype.bits_per_sec", rp.bits_per_sec);
    rep.scalar("prototype.bit_error_rate", rp.bit_error_rate);
    rep.scalar("fast.bits_per_sec", rf.bits_per_sec);
    rep.scalar("fast.bit_error_rate", rf.bit_error_rate);
    write_report(&rep);
}
