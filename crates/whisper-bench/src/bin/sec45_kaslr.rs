//! §4.5 — breaking KASLR: plain, under KPTI, under FLARE, and in a
//! Docker-style container — plus the baseline probes for contrast.
//!
//! Run: `cargo run -p whisper-bench --bin sec45_kaslr [--threads N] [--check]`
//!
//! The plain-KASLR sweep over the three susceptible presets fans out via
//! `tet-par` (one independent scenario per preset); output is
//! byte-identical for any `--threads` setting.

use tet_os::ContainerEnv;
use tet_uarch::CpuConfig;
use whisper::attacks::TetKaslr;
use whisper::baseline::{EntryBleedProbe, PrefetchKaslr};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, tick, write_report, RunReport, Table};

fn scenario(
    cpu: CpuConfig,
    seed: u64,
    kpti: bool,
    flare: bool,
    container: ContainerEnv,
) -> Scenario {
    Scenario::new(
        cpu,
        &ScenarioOptions {
            seed,
            kpti,
            flare,
            container,
            ..ScenarioOptions::default()
        },
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    whisper_bench::check_from_args(&mut args);
    let started = std::time::Instant::now();
    let mut table = Table::new(&[
        "environment",
        "CPU",
        "probe",
        "success",
        "time (sim s)",
        "paper",
    ]);
    let mut rep = RunReport::new("sec45_kaslr");
    rep.set_meta("section", "4.5");

    section("Plain KASLR (paper: broken on i7-6700, i7-7700, i9-10980XE)");
    let plain_presets = [
        CpuConfig::skylake_i7_6700(),
        CpuConfig::kaby_lake_i7_7700(),
        CpuConfig::comet_lake_i9_10980xe(),
    ];
    let plain_runs = tet_par::par_map(threads, &plain_presets, |cfg| {
        let mut sc = scenario(cfg.clone(), 1201, false, false, ContainerEnv::bare_metal());
        TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel)
    });
    for (cfg, r) in plain_presets.iter().zip(&plain_runs) {
        println!("  {}: success={} ({:.6} s)", cfg.name, r.success, r.seconds);
        table.row_owned(vec![
            "plain".into(),
            cfg.name.into(),
            "TET".into(),
            tick(r.success).into(),
            format!("{:.6}", r.seconds),
            "broken".into(),
        ]);
        assert!(r.success, "plain KASLR must fall on {}", cfg.name);
        rep.scalar(&format!("plain.{}.success", cfg.name), f64::from(r.success));
        rep.scalar(&format!("plain.{}.seconds", cfg.name), r.seconds);
    }

    section("KPTI enabled (paper: trampoline found among 512 offsets within 1 s)");
    {
        let cfg = CpuConfig::comet_lake_i9_10980xe();
        let mut sc = scenario(cfg.clone(), 1301, true, false, ContainerEnv::bare_metal());
        let attack = TetKaslr {
            assume_kpti: true,
            ..TetKaslr::default()
        };
        let r = attack.break_kaslr(&mut sc.machine, &sc.kernel);
        println!(
            "  {}: success={} over {} probes ({:.6} s)",
            cfg.name, r.success, r.probes, r.seconds
        );
        table.row_owned(vec![
            "KPTI".into(),
            cfg.name.into(),
            "TET (trampoline)".into(),
            tick(r.success).into(),
            format!("{:.6}", r.seconds),
            "broken <1 s".into(),
        ]);
        assert!(r.success, "KPTI must not save KASLR");
        assert!(
            r.seconds < 1.0,
            "the 512-slot sweep must finish within 1 simulated second"
        );
        rep.scalar("kpti.success", f64::from(r.success));
        rep.scalar("kpti.seconds", r.seconds);
        rep.counter("kpti.probes", r.probes);
    }

    section("FLARE deployed (paper: state-of-the-art defense, still bypassed)");
    {
        let cfg = CpuConfig::comet_lake_i9_10980xe();
        // The baseline prefetch probe first: FLARE defeats it.
        let mut sc = scenario(cfg.clone(), 1401, false, true, ContainerEnv::bare_metal());
        let pre = PrefetchKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        println!("  prefetch baseline under FLARE: success={}", pre.success);
        table.row_owned(vec![
            "FLARE".into(),
            cfg.name.into(),
            "prefetch baseline".into(),
            tick(pre.success).into(),
            format!("{:.6}", pre.seconds),
            "defended".into(),
        ]);
        assert!(!pre.success, "FLARE must stop the walk-presence baseline");

        let mut sc = scenario(cfg.clone(), 1401, false, true, ContainerEnv::bare_metal());
        let tet = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        println!("  TET-KASLR under FLARE: success={}", tet.success);
        table.row_owned(vec![
            "FLARE".into(),
            cfg.name.into(),
            "TET".into(),
            tick(tet.success).into(),
            format!("{:.6}", tet.seconds),
            "broken".into(),
        ]);
        assert!(tet.success, "TET must bypass FLARE");
        rep.scalar("flare.prefetch_baseline.success", f64::from(pre.success));
        rep.scalar("flare.tet.success", f64::from(tet.success));
        rep.scalar("flare.tet.seconds", tet.seconds);
    }

    section("EntryBleed baseline under KPTI (for context)");
    {
        let cfg = CpuConfig::comet_lake_i9_10980xe();
        let mut sc = scenario(cfg.clone(), 1501, true, false, ContainerEnv::bare_metal());
        let r = EntryBleedProbe::default().break_kaslr(&mut sc.machine, &sc.kernel);
        println!("  EntryBleed under KPTI: success={}", r.success);
        table.row_owned(vec![
            "KPTI".into(),
            cfg.name.into(),
            "EntryBleed baseline".into(),
            tick(r.success).into(),
            format!("{:.6}", r.seconds),
            "broken (2023)".into(),
        ]);
        rep.scalar("kpti.entrybleed_baseline.success", f64::from(r.success));
    }

    section("Docker container (paper: Docker 24.0.1/runc, still broken)");
    {
        let cfg = CpuConfig::comet_lake_i9_10980xe();
        let docker = ContainerEnv::docker_24();
        assert!(
            docker.supports_tet_probe(),
            "Docker leaves rdtsc + faulting loads"
        );
        let mut sc = scenario(cfg.clone(), 1601, false, false, docker.clone());
        let r = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
        println!(
            "  {} in Docker {} ({}): success={}",
            cfg.name, docker.version, docker.runtime, r.success
        );
        table.row_owned(vec![
            format!("Docker {}", docker.version),
            cfg.name.into(),
            "TET".into(),
            tick(r.success).into(),
            format!("{:.6}", r.seconds),
            "broken".into(),
        ]);
        assert!(r.success, "containerisation must not stop TET-KASLR");
        rep.scalar("docker.success", f64::from(r.success));
        rep.scalar("docker.seconds", r.seconds);
    }

    section("Summary");
    print!("{}", table.render());
    rep.set_throughput(started.elapsed(), threads, None);
    write_report(&rep);
}
