//! `serve_load` — closed-loop load generator for the `whisper-serve`
//! campaign service, producing `BENCH_serve.json`.
//!
//! Two phases:
//!
//! 1. **Latency probe** (single client): a handful of *cold* campaigns
//!    (unique seeds, so every one misses the result cache and runs
//!    through the scheduler) and a burst of *cached* resubmits of one
//!    warm campaign. Records cold vs cached p50/p99 in microseconds and
//!    the cached speedup — the content-addressed cache is the whole
//!    point, so the report asserts it visibly.
//! 2. **Closed-loop load**: `--clients N` threads each issue requests
//!    back-to-back for `--duration-ms`, mixing cache hits and misses at
//!    `--hit-pct` (deterministic round-robin schedule, no RNG). Records
//!    sustained requests/sec and the per-class latency histograms.
//!
//! By default it spawns an in-process server on an ephemeral port with
//! an isolated temp cache (removed afterwards); `--server URL` targets
//! an external `whisper-serve` instead — then the cold/cached split
//! relies on that server's cache being empty for the probe seeds.
//! Clients reuse one keep-alive connection each; `--no-keep-alive`
//! restores the PR-8 connection-per-request behavior for A/B runs.
//!
//! Run: `cargo run --release -p whisper-bench --bin serve_load
//!       [--server URL] [--clients N] [--duration-ms MS] [--hit-pct P]
//!       [--workers N] [--threads N] [--no-keep-alive] [--out PATH]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tet_obs::Histogram;
use tet_serve::{Client, ServerConfig};
use whisper_bench::{section, write_report, RunReport};

/// Cold probes per run: enough for a stable median without making the
/// smoke job slow.
const COLD_PROBES: u64 = 3;
/// Cached probes per run.
const CACHED_PROBES: u64 = 24;
/// The warm campaign every cache hit resubmits.
const WARM_SPEC: &str = "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                         \"attack\": \"cc\", \"seed\": 3, \"trials\": 64}";

/// A cold campaign: same shape as the warm one, but a seed nobody else
/// uses. Seeds for the probe phase count down from `u32::MAX`; seeds
/// for the load phase count up from `1 << 20` — disjoint ranges, so a
/// "cold" request can never accidentally hit.
fn cold_spec(seed: u64) -> String {
    format!(
        "{{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"cc\", \"seed\": {seed}, \"trials\": 64}}"
    )
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 < args.len() {
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    } else {
        args.remove(i);
        eprintln!("serve_load: {flag} needs a value");
        std::process::exit(2);
    }
}

fn parse_or_exit<T: std::str::FromStr>(flag: &str, v: String) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("serve_load: bad value {v:?} for {flag}");
        std::process::exit(2);
    })
}

/// Percentile over a sorted slice (nearest-rank on the closed index).
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One timed `submit → (wait) → fetch report` round trip.
fn timed_request(client: &Client, spec: &str) -> Result<(u64, bool), String> {
    let started = Instant::now();
    let (_, was_cached) = client.run_to_report(spec)?;
    Ok((micros(started.elapsed()), was_cached))
}

struct LoadTotals {
    requests: u64,
    errors: u64,
    cold_us: Vec<u64>,
    cached_us: Vec<u64>,
}

/// The closed-loop phase: each client thread alternates cache hits and
/// misses on a fixed `i % 100 < hit_pct` schedule.
fn run_load(
    base: &str,
    clients: usize,
    duration: Duration,
    hit_pct: u64,
    keep_alive: bool,
) -> LoadTotals {
    let stop = AtomicBool::new(false);
    let cold_seed = AtomicU64::new(1 << 20);
    let totals = std::sync::Mutex::new(LoadTotals {
        requests: 0,
        errors: 0,
        cold_us: Vec::new(),
        cached_us: Vec::new(),
    });
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let client = Client::new(base).with_keep_alive(keep_alive);
                let mut cold_us = Vec::new();
                let mut cached_us = Vec::new();
                let mut errors = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let want_hit = i % 100 < hit_pct;
                    i += 1;
                    let spec = if want_hit {
                        WARM_SPEC.to_string()
                    } else {
                        cold_spec(cold_seed.fetch_add(1, Ordering::Relaxed))
                    };
                    match timed_request(&client, &spec) {
                        // Classify by what actually happened, not what
                        // the schedule wanted: concurrent misses on the
                        // same key dedup into one flight.
                        Ok((us, true)) => cached_us.push(us),
                        Ok((us, false)) => cold_us.push(us),
                        Err(_) => errors += 1,
                    }
                }
                let mut t = totals.lock().unwrap();
                t.requests += (cold_us.len() + cached_us.len()) as u64;
                t.errors += errors;
                t.cold_us.extend(cold_us);
                t.cached_us.extend(cached_us);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    totals.into_inner().unwrap()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let no_keep_alive = args.iter().any(|a| a == "--no-keep-alive");
    args.retain(|a| a != "--no-keep-alive");
    let keep_alive = !no_keep_alive;
    let server = take_flag_value(&mut args, "--server");
    let clients: usize =
        take_flag_value(&mut args, "--clients").map_or(4, |v| parse_or_exit("--clients", v));
    let duration_ms: u64 = take_flag_value(&mut args, "--duration-ms")
        .map_or(2000, |v| parse_or_exit("--duration-ms", v));
    let hit_pct: u64 =
        take_flag_value(&mut args, "--hit-pct").map_or(90, |v| parse_or_exit("--hit-pct", v));
    let workers: usize =
        take_flag_value(&mut args, "--workers").map_or(4, |v| parse_or_exit("--workers", v));
    let threads: usize = take_flag_value(&mut args, "--threads")
        .map_or_else(tet_par::default_threads, |v| parse_or_exit("--threads", v));
    let out = take_flag_value(&mut args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    if let Some(stray) = args.first() {
        eprintln!("serve_load: unknown argument {stray:?}");
        eprintln!(
            "usage: serve_load [--server URL] [--clients N] [--duration-ms MS] \
             [--hit-pct P] [--workers N] [--threads N] [--no-keep-alive] [--out PATH]"
        );
        std::process::exit(2);
    }

    // Target: an external server, or a private in-process one.
    let mut handle = None;
    let mut cache_dir = None;
    let base = match &server {
        Some(url) => url.clone(),
        None => {
            let dir = std::env::temp_dir().join(format!("serve-load-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let h = tet_serve::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                threads,
                cache_dir: dir.clone(),
                ..ServerConfig::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("serve_load: start server: {e}");
                std::process::exit(1);
            });
            let base = h.addr().to_string();
            handle = Some(h);
            cache_dir = Some(dir);
            base
        }
    };

    section("whisper-serve load generator");
    println!(
        "  server: {base} ({})",
        if server.is_some() {
            "external"
        } else {
            "in-process"
        }
    );
    println!(
        "  clients: {clients}  duration: {duration_ms} ms  hit ratio: {hit_pct}%  \
         connections: {}",
        if keep_alive {
            "keep-alive"
        } else {
            "per-request"
        }
    );

    let client = Client::new(&base).with_keep_alive(keep_alive);
    if let Err(e) = client.health() {
        eprintln!("serve_load: health check failed: {e}");
        std::process::exit(1);
    }

    // Phase 1 — cold vs cached latency, one client at a time.
    let mut cold_probe_us = Vec::new();
    for i in 0..COLD_PROBES {
        let spec = cold_spec(u64::from(u32::MAX) - i);
        match timed_request(&client, &spec) {
            Ok((us, false)) => cold_probe_us.push(us),
            Ok((_, true)) => eprintln!("serve_load: probe seed unexpectedly cached, skipping"),
            Err(e) => {
                eprintln!("serve_load: cold probe: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = client.run_to_report(WARM_SPEC) {
        eprintln!("serve_load: warm-up: {e}");
        std::process::exit(1);
    }
    let mut cached_probe_us = Vec::new();
    for _ in 0..CACHED_PROBES {
        match timed_request(&client, WARM_SPEC) {
            Ok((us, true)) => cached_probe_us.push(us),
            Ok((_, false)) => eprintln!("serve_load: warm spec unexpectedly missed"),
            Err(e) => {
                eprintln!("serve_load: cached probe: {e}");
                std::process::exit(1);
            }
        }
    }
    cold_probe_us.sort_unstable();
    cached_probe_us.sort_unstable();
    let cold_p50 = percentile(&cold_probe_us, 50.0);
    let cached_p50 = percentile(&cached_probe_us, 50.0);
    let speedup = if cached_p50 > 0 {
        cold_p50 as f64 / cached_p50 as f64
    } else {
        f64::from(u32::from(cold_p50 > 0)) // degenerate clock: 0 or 1
    };
    println!(
        "\n  cold   p50: {cold_p50} us   p99: {} us",
        percentile(&cold_probe_us, 99.0)
    );
    println!(
        "  cached p50: {cached_p50} us   p99: {} us",
        percentile(&cached_probe_us, 99.0)
    );
    println!("  cached speedup: {speedup:.0}x");

    // Phase 2 — closed-loop load.
    let started = Instant::now();
    let mut totals = run_load(
        &base,
        clients,
        Duration::from_millis(duration_ms),
        hit_pct,
        keep_alive,
    );
    let wall = started.elapsed();
    totals.cold_us.sort_unstable();
    totals.cached_us.sort_unstable();
    let rps = totals.requests as f64 / wall.as_secs_f64();
    println!(
        "\n  load: {} requests in {:.2} s = {rps:.0} req/s ({} errors)",
        totals.requests,
        wall.as_secs_f64(),
        totals.errors
    );
    println!(
        "  under load — cold p50: {} us ({} reqs), cached p50: {} us ({} reqs)",
        percentile(&totals.cold_us, 50.0),
        totals.cold_us.len(),
        percentile(&totals.cached_us, 50.0),
        totals.cached_us.len()
    );

    let stats = client.cache_stats().unwrap_or_else(|e| {
        eprintln!("serve_load: cache stats: {e}");
        std::process::exit(1);
    });
    let cache_hits = stats.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
    let cache_misses = stats.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);

    let mut rep = RunReport::new("serve_load");
    rep.set_meta(
        "server",
        if server.is_some() {
            "external"
        } else {
            "in-process"
        },
    );
    rep.set_meta("warm_spec", WARM_SPEC);
    rep.set_meta(
        "client_mode",
        if keep_alive {
            "keep-alive"
        } else {
            "connection-per-request"
        },
    );
    rep.counter("clients", clients as u64);
    rep.counter("duration_ms", duration_ms);
    rep.counter("hit_pct", hit_pct);
    rep.counter("requests", totals.requests);
    rep.counter("errors", totals.errors);
    rep.counter("load_cold_requests", totals.cold_us.len() as u64);
    rep.counter("load_cached_requests", totals.cached_us.len() as u64);
    rep.counter("cache_hits", cache_hits);
    rep.counter("cache_misses", cache_misses);
    rep.scalar("requests_per_sec", rps);
    rep.scalar("cold_p50_us", cold_p50 as f64);
    rep.scalar("cold_p99_us", percentile(&cold_probe_us, 99.0) as f64);
    rep.scalar("cached_p50_us", cached_p50 as f64);
    rep.scalar("cached_p99_us", percentile(&cached_probe_us, 99.0) as f64);
    rep.scalar("cached_speedup", speedup);
    rep.scalar("load_cold_p50_us", percentile(&totals.cold_us, 50.0) as f64);
    rep.scalar("load_cold_p99_us", percentile(&totals.cold_us, 99.0) as f64);
    rep.scalar(
        "load_cached_p50_us",
        percentile(&totals.cached_us, 50.0) as f64,
    );
    rep.scalar(
        "load_cached_p99_us",
        percentile(&totals.cached_us, 99.0) as f64,
    );
    rep.scalar(
        "load_cold_p999_us",
        percentile(&totals.cold_us, 99.9) as f64,
    );
    rep.scalar(
        "load_cached_p999_us",
        percentile(&totals.cached_us, 99.9) as f64,
    );
    let mut cold_hist = Histogram::new();
    for &us in cold_probe_us.iter().chain(&totals.cold_us) {
        cold_hist.record(us);
    }
    let mut cached_hist = Histogram::new();
    for &us in cached_probe_us.iter().chain(&totals.cached_us) {
        cached_hist.record(us);
    }
    rep.histogram("cold_latency_us", &cold_hist);
    rep.histogram("cached_latency_us", &cached_hist);
    // Mirror the client-side latencies into the report's metrics section
    // so BENCH_serve.json carries p50/p99/p999 summaries in the same
    // place (and the same Prometheus export path) as the server's own
    // serve.{cached,cold}_request_us histograms.
    let registry = tet_metrics::Registry::new();
    let mh = registry.handle();
    for &us in cold_probe_us.iter().chain(&totals.cold_us) {
        mh.observe("client.cold_latency_us", us);
    }
    for &us in cached_probe_us.iter().chain(&totals.cached_us) {
        mh.observe("client.cached_latency_us", us);
    }
    rep.set_metrics(registry.snapshot());
    rep.set_throughput(wall, clients, None);
    write_report(&rep);
    match std::fs::write(&out, rep.to_json()) {
        Ok(()) => println!("\n  wrote {out}"),
        Err(e) => {
            eprintln!("serve_load: write {out}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(h) = handle {
        h.shutdown();
    }
    if let Some(dir) = cache_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The acceptance bar for the service: a cache hit must be at least
    // two orders of magnitude cheaper than recomputing the campaign.
    assert!(
        speedup >= 100.0,
        "cached latency must be >= 100x faster than cold (got {speedup:.1}x)"
    );
}
