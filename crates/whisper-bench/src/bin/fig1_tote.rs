//! Figure 1 — the TET gadget and its ToTE distribution.
//!
//! Reproduces Figure 1b: the frequency plot of ToTE when the in-window
//! Jcc triggers (test value == secret `'S'`) versus when it does not, and
//! the per-test-value argmax counts whose peak identifies the secret.
//!
//! Run: `cargo run -p whisper-bench --bin fig1_tote`

use tet_uarch::CpuConfig;
use whisper::analysis::{ArgmaxDecoder, Histogram, Polarity};
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport};

fn main() {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            interrupt_period: 7919, // some realistic timer noise
            ..ScenarioOptions::default()
        },
    );
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0);
    }

    // Samples are interleaved exactly like the real sweep: the secret
    // value is hit once in a while, so the predictor never trains taken
    // on the in-window Jcc (a back-to-back "triggered" loop would).
    section("Figure 1b (top): ToTE frequency, Jcc NOT triggered (test != 'S')");
    let mut h_miss = Histogram::new();
    for i in 0..200u64 {
        let test = (i % 255) + u64::from((i % 255) >= b'S' as u64);
        if let Some(t) = gadget.measure(&mut sc.machine, test) {
            h_miss.add(t);
        }
    }
    print!("{}", h_miss.render(40));

    section("Figure 1b (top): ToTE frequency, Jcc TRIGGERED (test == 'S')");
    let mut h_hit = Histogram::new();
    for i in 0..200u64 {
        // De-training probes between secret hits, as in the sweep; the
        // varying count keeps the gshare history context from repeating.
        for d in 0..(3 + i % 7) {
            gadget.measure(&mut sc.machine, (i * 3 + d) % b'S' as u64);
        }
        if let Some(t) = gadget.measure(&mut sc.machine, b'S' as u64) {
            h_hit.add(t);
        }
    }
    print!("{}", h_hit.render(40));

    println!(
        "\nToTE mode: not-triggered = {} cycles, triggered = {} cycles (triggered is longer)",
        h_miss.mode().unwrap_or(0),
        h_hit.mode().unwrap_or(0)
    );

    section("Figure 1b (bottom): argmax counts over the 0..=255 sweep");
    let decoder = ArgmaxDecoder::new(16, Polarity::MaxWins);
    let out = decoder.decode(|test, _| gadget.measure(&mut sc.machine, test as u64));
    // The decoder's value comes from the noise-rejected per-value minima;
    // the per-batch winner votes below are the Figure 1b counting plot.
    let peak = out.value;
    for (i, v) in out.votes.iter().enumerate() {
        if *v > 0 {
            println!(
                "test_value {:#04x} ({:>3}): {:<24} {}",
                i,
                i,
                "#".repeat((*v as usize).min(24)),
                v
            );
        }
    }
    println!(
        "\nargmax of the counting result: {:#04x} ('{}') — the secret byte",
        peak, peak as char
    );
    assert_eq!(
        peak, b'S',
        "the reproduction must recover the planted secret"
    );

    let mut rep = RunReport::new("fig1_tote");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.set_meta("figure", "1b");
    rep.counter("tote_mode_not_triggered", h_miss.mode().unwrap_or(0));
    rep.counter("tote_mode_triggered", h_hit.mode().unwrap_or(0));
    rep.counter("samples_not_triggered", h_miss.samples());
    rep.counter("samples_triggered", h_hit.samples());
    rep.counter("decoded_byte", peak as u64);
    rep.scalar("secret_recovered", f64::from(peak == b'S'));
    write_report(&rep);
}
