//! Ablation A2 — root-cause validation: switching off each calibrated
//! mechanism individually collapses exactly the attack it carries
//! (DESIGN.md §1).
//!
//! * recovery serialization off → TET-MD's signal vanishes;
//! * walk retries off → TET-KASLR's mapped/unmapped gap vanishes;
//! * TLB-fill-on-fault off (the paper's proposed hardware fix, §6.3) —
//!   repeated probes no longer get faster, removing the residual
//!   fingerprint the fill leaves.
//!
//! Run: `cargo run -p whisper-bench --bin ablation_mechanism`

use tet_uarch::CpuConfig;
use whisper::attacks::{TetKaslr, TetMeltdown};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, tick, write_report, RunReport, Table};

fn main() {
    let mut table = Table::new(&["mechanism knob", "attack", "baseline", "knob off"]);
    let mut rep = RunReport::new("ablation_mechanism");
    rep.set_meta("ablation", "A2");

    section("Mechanism 1: exception-entry serialization behind recovery (TET-MD)");
    {
        let base_cfg = CpuConfig::kaby_lake_i7_7700();
        let mut off_cfg = base_cfg.clone();
        off_cfg.timing.recovery_cycles = 0;

        let leak = |cfg: CpuConfig| {
            let mut sc = Scenario::new(cfg, &ScenarioOptions::default());
            TetMeltdown::default()
                .leak(&mut sc.machine, sc.kernel_secret_va, 4)
                .recovered
                == b"WHIS"
        };
        let with = leak(base_cfg);
        let without = leak(off_cfg);
        println!("  recovery=60: leak ok = {with}; recovery=0: leak ok = {without}");
        table.row_owned(vec![
            "recovery_cycles -> 0".into(),
            "TET-MD".into(),
            tick(with).into(),
            tick(without).into(),
        ]);
        assert!(with && !without, "mechanism 1 must carry TET-MD");
        rep.scalar("recovery_serialization.baseline_leaks", f64::from(with));
        rep.scalar("recovery_serialization.off_leaks", f64::from(without));
    }

    section("Mechanism 3: page-walk retry on failure (TET-KASLR)");
    {
        let base_cfg = CpuConfig::comet_lake_i9_10980xe();
        let mut off_cfg = base_cfg.clone();
        off_cfg.walk.fail_retries = 0;

        let brk = |cfg: CpuConfig| {
            let mut sc = Scenario::new(
                cfg,
                &ScenarioOptions {
                    seed: 5,
                    ..ScenarioOptions::default()
                },
            );
            TetKaslr::default()
                .break_kaslr(&mut sc.machine, &sc.kernel)
                .success
        };
        let with = brk(base_cfg);
        let without = brk(off_cfg);
        println!("  retries=1: break ok = {with}; retries=0: break ok = {without}");
        table.row_owned(vec![
            "walk fail_retries -> 0".into(),
            "TET-KASLR".into(),
            tick(with).into(),
            tick(without).into(),
        ]);
        assert!(with, "the Intel walk-retry model must carry TET-KASLR");
        // With retries off, only the residual walk-depth difference is
        // left; the attack may or may not clear the min_gap — record it.
        println!("  (without retries the differential drops to walk-depth only)");
        rep.scalar("walk_retry.baseline_breaks", f64::from(with));
        rep.scalar("walk_retry.off_breaks", f64::from(without));
    }

    section("Paper §6.3 hardware fix: no TLB fill unless permissions pass");
    {
        // The fix removes the persistent trace (the installed TLB entry):
        // a *repeat* probe of a mapped kernel address stays slow instead
        // of turning into a TLB hit.
        use whisper::gadget::{TetGadget, TetGadgetSpec};
        let probe_twice = |mut cfg: CpuConfig, fix: bool| {
            cfg.vuln.tlb_fill_on_fault = !fix;
            let mut sc = Scenario::new(
                cfg,
                &ScenarioOptions {
                    seed: 5,
                    ..ScenarioOptions::default()
                },
            );
            let g = TetGadget::build(TetGadgetSpec::kaslr_probe(sc.kernel.base));
            // Warm the code path so the comparison isolates the TLB.
            for _ in 0..3 {
                g.measure(&mut sc.machine, 0);
            }
            sc.machine.flush_tlbs();
            let first = g.measure(&mut sc.machine, 0).expect("probe completes");
            let second = g.measure(&mut sc.machine, 0).expect("probe completes");
            (first, second)
        };
        let (f0, s0) = probe_twice(CpuConfig::comet_lake_i9_10980xe(), false);
        let (f1, s1) = probe_twice(CpuConfig::comet_lake_i9_10980xe(), true);
        println!("  stock:  first probe {f0}, repeat probe {s0} (TLB entry installed)");
        println!("  fixed:  first probe {f1}, repeat probe {s1} (no entry installed)");
        table.row_owned(vec![
            "tlb_fill_on_fault -> off".into(),
            "repeat-probe speedup".into(),
            tick(s0 < f0).into(),
            tick(s1 < f1).into(),
        ]);
        assert!(s0 < f0, "stock hardware caches the faulting translation");
        assert!(s1 >= f1, "the fixed hardware must not");
        rep.scalar("tlb_fill_fix.stock_repeat_speedup", f64::from(s0 < f0));
        rep.scalar("tlb_fill_fix.fixed_repeat_speedup", f64::from(s1 < f1));
    }

    section("Summary");
    print!("{}", table.render());
    write_report(&rep);
    println!("\nreproduced: each mechanism carries exactly the attack DESIGN.md assigns to it");
}
