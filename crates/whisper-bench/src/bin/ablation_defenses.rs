//! Ablation A4 — the paper's §6 defense discussion, quantified:
//!
//! * **FGKASLR (§6.2)** does not stop the base leak, but makes the
//!   leaked base useless for code reuse — and costs real cycles from
//!   destroyed code locality (the paper's "high performance overhead").
//! * **Buffer clearing** (the deployed MDS microcode mitigation) stops
//!   TET-ZBL by scrubbing the fill buffers on privilege transitions.
//!
//! Run: `cargo run --release -p whisper-bench --bin ablation_defenses`

use tet_isa::{Asm, Reg};
use tet_os::fgkaslr::{FunctionLayout, WELL_KNOWN_FUNCTIONS};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};
use whisper::attacks::{TetKaslr, TetZombieload};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, tick, write_report, RunReport, Table};

/// Builds a synthetic kernel hot path: a dispatcher calling every
/// function once (in semantic order), with bodies placed according to
/// `layout`. Scattered layouts put consecutive calls on distant code
/// pages.
fn workload(layout: &FunctionLayout) -> tet_isa::Program {
    // Instruction-index base of each function body: its byte offset
    // scaled down (2 bytes -> 1 instruction slot spreads bodies over
    // several pages and cache lines, like a real image).
    let header_len = WELL_KNOWN_FUNCTIONS.len() + 2;
    let body_base = |name: &str| -> usize {
        header_len + (layout.offset_of(name).expect("known symbol") / 2) as usize
    };

    let mut a = Asm::new();
    // The dispatcher calls in *semantic* order (the order the kernel's
    // logic needs), independent of where FGKASLR put the bodies.
    let mut labels = std::collections::HashMap::new();
    for f in WELL_KNOWN_FUNCTIONS {
        let l = a.fresh_label();
        labels.insert(f.name, l);
    }
    a.mov_imm(Reg::Rsp, 0x60_0800);
    for f in WELL_KNOWN_FUNCTIONS {
        a.call(labels[f.name]);
    }
    a.halt();
    assert_eq!(a.here(), header_len);

    // Emit bodies at their layout positions (pad the gaps with nops).
    let mut placed: Vec<(&str, usize)> = WELL_KNOWN_FUNCTIONS
        .iter()
        .map(|f| (f.name, body_base(f.name)))
        .collect();
    placed.sort_by_key(|&(_, at)| at);
    for (name, at) in placed {
        assert!(a.here() <= at, "bodies must not overlap");
        while a.here() < at {
            a.nop();
        }
        a.bind(labels[name]);
        a.nops(6).ret();
    }
    a.assemble().expect("workload assembles")
}

fn run_workload(layout: &FunctionLayout) -> (u64, u64) {
    // Cold microarchitectural state: the overhead FGKASLR costs on every
    // context-switch-heavy path comes from refetching fragmented code —
    // link-order packs bodies into shared I-cache lines, a shuffled
    // layout burns a line (and page-walk) per body.
    let prog = workload(layout);
    let mut m = Machine::new(CpuConfig::comet_lake_i9_10980xe(), 3);
    m.map_user_page(0x60_0000);
    let before = m.cpu().pmu.snapshot();
    let r = m.run(&prog, &RunConfig::default());
    assert_eq!(r.exit, RunExit::Halted);
    let delta = m.cpu().pmu.snapshot().delta(&before);
    let icache_stall = delta.count(tet_pmu::Event::Icache16bIfdataStall);
    (r.cycles, icache_stall)
}

fn main() {
    section("FGKASLR vs TET-KASLR: the base still leaks...");
    let mut sc = Scenario::new(
        CpuConfig::comet_lake_i9_10980xe(),
        &ScenarioOptions {
            seed: 77,
            ..ScenarioOptions::default()
        },
    );
    let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
    assert!(result.success, "FGKASLR does not hide the image base");
    let base = result.found_base.expect("found");
    println!("  TET-KASLR recovered the base: {base:#x} (correct)");

    println!("\n...but the attacker's offset table no longer resolves functions:");
    let attacker_table = FunctionLayout::standard(WELL_KNOWN_FUNCTIONS);
    let mut t = Table::new(&[
        "boot",
        "layout",
        "attacker hit rate",
        "commit_creds @ base+0?",
    ]);
    for boot in 0..4u64 {
        let truth = if boot == 0 {
            FunctionLayout::standard(WELL_KNOWN_FUNCTIONS)
        } else {
            FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, boot)
        };
        let rate = truth.attacker_hit_rate(&attacker_table);
        let cc_where_expected =
            truth.offset_of("commit_creds") == attacker_table.offset_of("commit_creds");
        t.row_owned(vec![
            if boot == 0 {
                "plain KASLR".into()
            } else {
                format!("FGKASLR #{boot}")
            },
            if truth.is_fgkaslr() {
                "shuffled"
            } else {
                "link order"
            }
            .into(),
            format!("{:.0} %", rate * 100.0),
            tick(cc_where_expected).into(),
        ]);
    }
    print!("{}", t.render());

    section("FGKASLR's cost: destroyed code locality (the paper's overhead claim)");
    let (plain_cycles, plain_stall) = run_workload(&FunctionLayout::standard(WELL_KNOWN_FUNCTIONS));
    let mut worst = (plain_cycles, plain_stall);
    for boot in 1..=4u64 {
        let (c, s) = run_workload(&FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, boot));
        if c > worst.0 {
            worst = (c, s);
        }
    }
    println!(
        "  link-order layout: {} cycles, {} icache stall cycles",
        plain_cycles, plain_stall
    );
    println!(
        "  worst FGKASLR boot: {} cycles, {} icache stall cycles ({:+.1} % cycles)",
        worst.0,
        worst.1,
        (worst.0 as f64 / plain_cycles as f64 - 1.0) * 100.0
    );
    assert!(
        worst.0 > plain_cycles,
        "scattering code must not be free on this workload"
    );

    section("Buffer clearing vs TET-ZBL (the deployed MDS mitigation)");
    let zbl_mitigated_garbage;
    {
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.set_victim_byte(0, b'Z');
        let leak = TetZombieload::default().sample_byte(&mut sc, 0);
        println!(
            "  unmitigated: sampled {:#04x} (victim byte is 0x5a)",
            leak.value
        );
        assert_eq!(leak.value, b'Z');

        // Mitigated: the OS scrubs the fill buffers on every privilege
        // transition, i.e. after each victim access and before the
        // attacker's probes run.
        let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
        sc.set_victim_byte(0, b'Z');
        sc.victim_touch(0);
        sc.machine.mem_mut().lfb_mut().clear(); // verw on the boundary
        use whisper::gadget::{TetGadget, TetGadgetSpec};
        let cfg = sc.machine.config().clone();
        let g = TetGadget::build(TetGadgetSpec::zombieload(0x7f00_dead_0000, &cfg));
        use whisper::analysis::{ArgmaxDecoder, Polarity};
        let out = ArgmaxDecoder::new(3, Polarity::MinWins).decode(|test, _| {
            sc.victim_touch(0);
            sc.machine.mem_mut().lfb_mut().clear(); // scrub per transition
            g.measure(&mut sc.machine, test as u64)
        });
        println!(
            "  with buffer clearing: sampled {:#04x} (garbage)",
            out.value
        );
        assert_ne!(out.value, b'Z', "scrubbed buffers must not leak");
        zbl_mitigated_garbage = out.value != b'Z';
    }

    let mut rep = RunReport::new("ablation_defenses");
    rep.set_meta("ablation", "A4");
    rep.scalar("fgkaslr.base_leaks", f64::from(result.success));
    rep.counter("fgkaslr.plain_cycles", plain_cycles);
    rep.counter("fgkaslr.worst_boot_cycles", worst.0);
    rep.scalar(
        "fgkaslr.overhead_pct",
        (worst.0 as f64 / plain_cycles as f64 - 1.0) * 100.0,
    );
    rep.scalar(
        "buffer_clearing.stops_zbl",
        f64::from(zbl_mitigated_garbage),
    );
    write_report(&rep);

    println!("\nreproduced: FGKASLR blunts the *consequences* of the base leak at a real");
    println!("locality cost, and buffer scrubbing kills the ZBL variant — while nothing");
    println!("in this section stops the TET channel itself (see ablation_mechanism).");
}
