//! Ablation A5 — parameter sensitivity: how the TET-MD signal magnitude
//! depends on the microarchitectural constants, exposing the crossover
//! structure of mechanism 1 (DESIGN.md §1).
//!
//! The MD delta exists only while the misprediction-recovery window
//! outlives the fault-confirmation window: delta ≈ (jcc_resolve +
//! recovery) − (forward + confirm), clamped at 0. We sweep both knobs
//! and check the predicted crossover; then we sweep the page-walk level
//! cost and check the TET-KASLR gap scales with it.
//!
//! Run: `cargo run --release -p whisper-bench --bin ablation_sensitivity [--threads N]`
//!
//! Each sweep point builds its own scenario from a modified config, so
//! all three sweeps fan out via `tet-par`; output is byte-identical for
//! any `--threads` setting.

use tet_uarch::CpuConfig;
use whisper::gadget::{TetGadget, TetGadgetSpec, TransientBegin};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport, Table};

/// Measures the steady-state MD delta (hit − miss ToTE) for a config.
fn md_delta(cfg: CpuConfig) -> i64 {
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let gadget = TetGadget::build(TetGadgetSpec {
        begin: TransientBegin::SignalHandler,
        ..TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg)
    });
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0);
    }
    let miss = gadget.measure(&mut sc.machine, 0).expect("completes") as i64;
    let hit = gadget
        .measure(&mut sc.machine, b'S' as u64)
        .expect("completes") as i64;
    hit - miss
}

/// Measures the KASLR mapped/unmapped gap for a config.
fn kaslr_gap(cfg: CpuConfig) -> i64 {
    let mut sc = Scenario::new(
        cfg,
        &ScenarioOptions {
            seed: 5,
            ..ScenarioOptions::default()
        },
    );
    let mapped = TetGadget::build(TetGadgetSpec::kaslr_probe(sc.kernel.base));
    let unmapped = TetGadget::build(TetGadgetSpec::kaslr_probe(tet_os::layout::slot_base(
        (sc.kernel.slot + 200) % 512,
    )));
    let mut probe = |g: &TetGadget| {
        g.measure(&mut sc.machine, 0); // warm code
        sc.machine.flush_tlbs();
        g.measure(&mut sc.machine, 0).expect("completes") as i64
    };
    let t_unmapped = probe(&unmapped);
    let t_mapped = probe(&mapped);
    t_unmapped - t_mapped
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    let started = std::time::Instant::now();
    let mut rep = RunReport::new("ablation_sensitivity");
    rep.set_meta("ablation", "A5");

    section("TET-MD delta vs recovery window (fault confirm fixed at 40)");
    let mut t = Table::new(&["recovery_cycles", "MD delta (cycles)", "signal"]);
    let recoveries = [0u64, 20, 40, 50, 60, 90, 120];
    let recovery_deltas = tet_par::par_map(threads, &recoveries, |&recovery| {
        let mut cfg = CpuConfig::kaby_lake_i7_7700();
        cfg.timing.recovery_cycles = recovery;
        md_delta(cfg)
    });
    let mut deltas = Vec::new();
    for (&recovery, &d) in recoveries.iter().zip(&recovery_deltas) {
        deltas.push((recovery, d));
        rep.scalar(&format!("md_delta.recovery_{recovery:03}"), d as f64);
        t.row_owned(vec![
            recovery.to_string(),
            format!("{d:+}"),
            if d > 0 { "leaks" } else { "silent" }.into(),
        ]);
    }
    print!("{}", t.render());
    assert!(
        deltas.first().expect("swept").1 <= 0,
        "no recovery, no signal"
    );
    assert!(
        deltas.last().expect("swept").1 > 0,
        "long recovery must leak"
    );
    let crossover = deltas.iter().find(|&&(_, d)| d > 0).expect("flips").0;
    println!(
        "\ncrossover near recovery ≈ {crossover} cycles — the recovery window must\n\
         outlive the fault-confirm window (40) for the Jcc stall to delay delivery"
    );

    section("TET-MD delta vs transient-window length (recovery fixed at 60)");
    let mut t = Table::new(&["fault_confirm_cycles", "MD delta (cycles)", "signal"]);
    let confirms = [10u64, 25, 40, 55, 70, 100];
    let confirm_deltas = tet_par::par_map(threads, &confirms, |&confirm| {
        let mut cfg = CpuConfig::kaby_lake_i7_7700();
        cfg.timing.fault_confirm_cycles = confirm;
        md_delta(cfg)
    });
    let mut deltas = Vec::new();
    for (&confirm, &d) in confirms.iter().zip(&confirm_deltas) {
        deltas.push((confirm, d));
        rep.scalar(&format!("md_delta.confirm_{confirm:03}"), d as f64);
        t.row_owned(vec![
            confirm.to_string(),
            format!("{d:+}"),
            if d > 0 { "leaks" } else { "silent" }.into(),
        ]);
    }
    print!("{}", t.render());
    assert!(
        deltas.first().expect("swept").1 > deltas.last().expect("swept").1,
        "a longer window must shrink the delta (it absorbs the recovery)"
    );
    assert!(
        deltas.last().expect("swept").1 <= 0,
        "a huge window hides the stall"
    );

    section("TET-KASLR gap vs page-walk level cost (Intel retry policy)");
    let mut t = Table::new(&["walk level_cost", "unmapped - mapped (cycles)"]);
    let level_costs = [5u64, 10, 15, 25, 40];
    let gaps = tet_par::par_map(threads, &level_costs, |&level_cost| {
        let mut cfg = CpuConfig::comet_lake_i9_10980xe();
        cfg.walk.level_cost = level_cost;
        kaslr_gap(cfg)
    });
    for (&level_cost, &g) in level_costs.iter().zip(&gaps) {
        rep.scalar(&format!("kaslr_gap.level_cost_{level_cost:03}"), g as f64);
        t.row_owned(vec![level_cost.to_string(), format!("{g:+}")]);
    }
    print!("{}", t.render());
    assert!(
        gaps.windows(2).all(|w| w[1] >= w[0]),
        "the gap must grow monotonically with walk cost: {gaps:?}"
    );
    assert!(gaps.last().expect("swept") > &0);
    rep.set_throughput(started.elapsed(), threads, None);
    write_report(&rep);
    println!(
        "\nreproduced: the KASLR differential is proportional to the walk cost the\n\
         retry doubles — exactly the paper's root-cause account (§5.2.4)"
    );
}
