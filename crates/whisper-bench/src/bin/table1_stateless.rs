//! Table 1 — comparison of side-channel attacks: quantitative evidence
//! for classifying the TET attacks as *stateless* and *transient-only*.
//!
//! We measure, for one steady-state leak iteration of each channel:
//! the persistent µarch state it changed (cache/BTB/DTLB fingerprint
//! diffs), the `clflush`es it needed, and whether a cache-anomaly
//! detector (the defense assumed deployed in §4.2) flags it.
//!
//! Run: `cargo run -p whisper-bench --bin table1_stateless`

use tet_uarch::CpuConfig;
use whisper::attacks::TetMeltdown;
use whisper::baseline::{CacheAttackDetector, FlushReloadMeltdown};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper::stealth::measure_footprint;
use whisper_bench::{section, tick, write_report, RunReport, Table};

fn main() {
    let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
    FlushReloadMeltdown::prepare(&mut sc.machine);
    let secret = sc.kernel_secret_va;

    // Reach steady state for both attacks.
    let _ = TetMeltdown::default().leak_byte(&mut sc.machine, secret);
    let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, secret);
    let _ = TetMeltdown::default().leak_byte(&mut sc.machine, secret);
    let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, secret);

    let detector = CacheAttackDetector::default();

    let before = sc.machine.cpu().pmu.snapshot();
    let tet_fp = measure_footprint(&mut sc.machine, |m| {
        let _ = TetMeltdown::default().leak_byte(m, secret);
    });
    let tet_delta = sc.machine.cpu().pmu.snapshot().delta(&before);
    let tet_verdict = detector.inspect(&tet_delta);

    let before = sc.machine.cpu().pmu.snapshot();
    let fr_fp = measure_footprint(&mut sc.machine, |m| {
        let _ = FlushReloadMeltdown::default().leak_byte(m, secret);
    });
    let fr_delta = sc.machine.cpu().pmu.snapshot().delta(&before);
    let fr_verdict = detector.inspect(&fr_delta);

    section("Table 1 evidence: per-byte footprint and detectability");
    let mut table = Table::new(&[
        "channel",
        "type (Table 1)",
        "clflush/byte",
        "L1 misses/byte",
        "state entries changed",
        "detector flags it",
    ]);
    table.row_owned(vec![
        "Flush+Reload MD".into(),
        "direct, stateful".into(),
        fr_verdict.clflushes.to_string(),
        fr_verdict.l1_misses.to_string(),
        fr_fp.total_state_changes().to_string(),
        tick(fr_verdict.flagged).into(),
    ]);
    table.row_owned(vec![
        "TET-MD (Whisper)".into(),
        "direct, stateless, transient-only".into(),
        tet_verdict.clflushes.to_string(),
        tet_verdict.l1_misses.to_string(),
        tet_fp.total_state_changes().to_string(),
        tick(tet_verdict.flagged).into(),
    ]);
    print!("{}", table.render());

    assert!(fr_verdict.flagged, "the detector must flag Flush+Reload");
    assert!(!tet_verdict.flagged, "the detector must miss TET");
    assert_eq!(tet_fp.clflushes, 0);

    let mut rep = RunReport::new("table1_stateless");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.set_meta("table", "1");
    rep.counter("flush_reload.clflushes", fr_verdict.clflushes);
    rep.counter("flush_reload.l1_misses", fr_verdict.l1_misses);
    rep.counter(
        "flush_reload.state_changes",
        fr_fp.total_state_changes() as u64,
    );
    rep.scalar("flush_reload.flagged", f64::from(fr_verdict.flagged));
    rep.counter("tet.clflushes", tet_verdict.clflushes);
    rep.counter("tet.l1_misses", tet_verdict.l1_misses);
    rep.counter("tet.state_changes", tet_fp.total_state_changes() as u64);
    rep.scalar("tet.flagged", f64::from(tet_verdict.flagged));
    write_report(&rep);

    println!(
        "\nreproduced: TET transmits through squash timing alone — no probe array, no flushes,\n\
         near-zero persistent state — and sails past the cache-anomaly detector."
    );
}
