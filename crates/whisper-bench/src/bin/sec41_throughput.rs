//! §4.1 — experiment setup and result: covert-channel and attack
//! throughput with error rates, on the CPUs the paper highlights.
//!
//! Paper numbers (absolute values are testbed-specific; the comparison
//! targets are rank and order of magnitude):
//!   * TET-CC:  500 B/s  at <5 %  error (i7-7700, 1 KiB random payload)
//!   * TET-MD:   50 B/s  at <3 %  error (i7-7700)
//!   * TET-RSB: 21.5 KB/s at <0.1 % error (i9-13900K)
//!   * TET-KASLR: 0.8829 s (n=3, sd 0.0036) on the i9-10980XE
//!
//! Run: `cargo run --release -p whisper-bench --bin sec41_throughput [payload_bytes] [--threads N] [--check]`
//!
//! The covert-channel payload is transmitted in fixed 32-byte chunks and
//! the three KASLR seed replicas fan out via `tet-par`; output is
//! byte-identical for any `--threads` setting. The KASLR fan-out
//! streams a `whisper-top` dashboard to stderr while it runs
//! (`TET_QUIET=1` silences it, `TET_FLIGHT=path` appends JSONL); with
//! `TET_METRICS=1` the flight gauges also land in the JSON report's
//! metrics section. Stdout is byte-identical either way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tet_obs::MetricsSection;
use tet_uarch::CpuConfig;
use whisper::attacks::{TetKaslr, TetMeltdown, TetSpectreRsb};
use whisper::channel::TetCovertChannel;
use whisper::eval::CellStats;
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::telemetry::Campaign;
use whisper_bench::{section, write_report, RunReport, Table};

fn random_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = tet_par::threads_from_args(&mut args);
    whisper_bench::check_from_args(&mut args);
    let payload_len: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(64);
    let started = std::time::Instant::now();
    let noise = ScenarioOptions {
        interrupt_period: 7919,
        ..ScenarioOptions::default()
    };
    let mut table = Table::new(&[
        "experiment",
        "CPU",
        "payload",
        "throughput",
        "error",
        "paper throughput",
        "paper error",
    ]);
    let mut report = RunReport::new("sec41_throughput");
    report.set_meta("section", "4.1");
    report.counter("payload_bytes", payload_len as u64);

    section("TET-CC (covert channel)");
    {
        let sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &noise);
        let payload = random_payload(payload_len, 11);
        let rep = TetCovertChannel::default().transmit_chunked(&sc, &payload, threads);
        println!(
            "  {} bytes in {:.4} simulated s -> {:.1} B/s, error {:.2}%",
            payload.len(),
            rep.seconds,
            rep.bytes_per_sec,
            rep.error_rate * 100.0
        );
        table.row_owned(vec![
            "TET-CC".into(),
            "i7-7700".into(),
            format!("{} B", payload.len()),
            format!("{:.1} B/s", rep.bytes_per_sec),
            format!("{:.2} %", rep.error_rate * 100.0),
            "500 B/s".into(),
            "<5 %".into(),
        ]);
        report.scalar("tet_cc.bytes_per_sec", rep.bytes_per_sec);
        report.scalar("tet_cc.error_rate", rep.error_rate);
    }

    section("TET-MD (Meltdown through TET)");
    {
        let mut sc = Scenario::new(
            CpuConfig::kaby_lake_i7_7700(),
            &ScenarioOptions {
                kernel_secret: random_payload(payload_len.min(32), 13),
                ..noise.clone()
            },
        );
        let expected_len = payload_len.min(32);
        let expected = {
            let pa = sc.machine.aspace().translate(sc.kernel_secret_va).unwrap();
            sc.machine.phys().read_bytes(pa, expected_len)
        };
        let rep = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, expected_len);
        println!(
            "  {} bytes in {:.4} simulated s -> {:.1} B/s, error {:.2}%",
            expected_len,
            rep.seconds,
            rep.bytes_per_sec,
            rep.error_against(&expected) * 100.0
        );
        table.row_owned(vec![
            "TET-MD".into(),
            "i7-7700".into(),
            format!("{expected_len} B"),
            format!("{:.1} B/s", rep.bytes_per_sec),
            format!("{:.2} %", rep.error_against(&expected) * 100.0),
            "50 B/s".into(),
            "<3 %".into(),
        ]);
        report.scalar("tet_md.bytes_per_sec", rep.bytes_per_sec);
        report.scalar("tet_md.error_rate", rep.error_against(&expected));
    }

    section("TET-RSB (Spectre-RSB through TET)");
    {
        let secret = random_payload(payload_len.min(16), 17);
        let mut sc = Scenario::new(
            CpuConfig::raptor_lake_i9_13900k(),
            &ScenarioOptions {
                user_secret: secret.clone(),
                ..noise.clone()
            },
        );
        let rep = TetSpectreRsb::default().leak(&mut sc.machine, sc.user_secret_va, secret.len());
        println!(
            "  {} bytes in {:.4} simulated s -> {:.1} B/s, error {:.2}%",
            secret.len(),
            rep.seconds,
            rep.bytes_per_sec,
            rep.error_against(&secret) * 100.0
        );
        table.row_owned(vec![
            "TET-RSB".into(),
            "i9-13900K".into(),
            format!("{} B", secret.len()),
            format!("{:.1} B/s", rep.bytes_per_sec),
            format!("{:.2} %", rep.error_against(&secret) * 100.0),
            "21.5 KB/s".into(),
            "<0.1 %".into(),
        ]);
        report.scalar("tet_rsb.bytes_per_sec", rep.bytes_per_sec);
        report.scalar("tet_rsb.error_rate", rep.error_against(&secret));
    }

    section("TET-KASLR (n=3, like the paper)");
    {
        let seeds = [31u64, 32, 33];
        // Each replica returns its result plus the machine's cost/PMU
        // counters; the campaign observer streams those to the
        // `whisper-top` dashboard as replicas finish (telemetry only —
        // results commit before the observer runs).
        let campaign = Campaign::new("sec41.kaslr", seeds.len() as u64);
        let detailed = tet_par::run_indexed_observed(
            threads,
            seeds.len(),
            || (),
            |(), i| {
                let mut sc = Scenario::new(
                    CpuConfig::comet_lake_i9_10980xe(),
                    &ScenarioOptions {
                        seed: seeds[i],
                        ..noise.clone()
                    },
                );
                // Under interrupt noise each slot needs a few samples (the
                // per-slot minimum rejects the additive bubbles).
                let attack = TetKaslr {
                    samples_per_slot: 3,
                    ..TetKaslr::default()
                };
                let r = attack.break_kaslr(&mut sc.machine, &sc.kernel);
                let mut cs = CellStats::default();
                cs.absorb(sc.machine.stats());
                cs.absorb_pmu(sc.machine.pmu_lifetime());
                (r, cs)
            },
            |_, (_, cs): &(_, CellStats)| campaign.on_cell(cs),
        );
        let runs: Vec<_> = detailed.iter().map(|(r, _)| r.clone()).collect();
        let mut flight = MetricsSection::default();
        campaign.finish(&mut flight);
        if tet_obs::env_flag("TET_METRICS", false) {
            report.set_metrics(flight);
        }
        let mut times = Vec::new();
        for (seed, r) in seeds.iter().zip(&runs) {
            assert!(r.success, "KASLR break must succeed (seed {seed})");
            times.push(r.seconds);
            println!(
                "  seed {seed}: base {:#x} found in {:.6} simulated s ({} probes)",
                r.found_base.unwrap(),
                r.seconds,
                r.probes
            );
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let sd =
            (times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64).sqrt();
        println!(
            "  mean {:.6} s, sd {:.6} (paper: 0.8829 s, sd 0.0036)",
            mean, sd
        );
        table.row_owned(vec![
            "TET-KASLR".into(),
            "i9-10980XE".into(),
            "512 slots".into(),
            format!("{mean:.6} s/break"),
            format!("sd {sd:.6}"),
            "0.8829 s/break".into(),
            "sd 0.0036".into(),
        ]);
        report.scalar("tet_kaslr.mean_seconds", mean);
        report.scalar("tet_kaslr.sd_seconds", sd);
    }

    section("Summary (paper §4.1)");
    print!("{}", table.render());
    report.set_throughput(started.elapsed(), threads, None);
    write_report(&report);
}
