//! Validates a Prometheus text-exposition file with the `tet-metrics`
//! parser — the CI `metrics-smoke` step runs this over the `.prom`
//! sidecar that `table2_matrix` exports under `TET_METRICS=1`.
//!
//! Run: `prom_check FILE [--require NAME]...`
//!
//! Exits non-zero if the file is missing, any sample line is malformed
//! (bad name, non-finite value, unterminated labels), or a `--require`d
//! metric name has no sample. On success prints one summary line per
//! file: the sample and distinct-family counts.

use std::collections::BTreeSet;
use std::process::exit;

use tet_metrics::parse_prometheus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut required = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--require" {
            match it.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("--require needs a metric name");
                    exit(2);
                }
            }
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        eprintln!("usage: prom_check FILE [--require NAME]...");
        exit(2);
    }

    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: read failed: {e}");
                failed = true;
                continue;
            }
        };
        match parse_prometheus(&text) {
            Ok(samples) => {
                let families: BTreeSet<&str> = samples.iter().map(|s| s.name.as_str()).collect();
                for want in &required {
                    if !families.contains(want.as_str()) {
                        eprintln!("{path}: required metric {want} not found");
                        failed = true;
                    }
                }
                println!(
                    "{path}: {} samples, {} metric families — OK",
                    samples.len(),
                    families.len()
                );
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}
