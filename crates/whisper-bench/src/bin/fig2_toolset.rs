//! Figure 2 — the automated PMU analysis toolset: preparation (event
//! catalog), online collection (repeated runs), offline analysis
//! (differential filtering). This binary runs the whole pipeline against
//! the TET gadget and prints the surviving events grouped by the unit
//! they observe — answering the paper's RQ1 (frontend), RQ2 (backend)
//! and RQ3 (memory subsystem).
//!
//! Run: `cargo run -p whisper-bench --bin fig2_toolset`

use tet_pmu::{Collector, DifferentialReport, Event, Unit};
use tet_uarch::CpuConfig;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper_bench::{section, write_report, RunReport};

fn main() {
    // ---- Stage 1: preparation -------------------------------------------
    section("Stage 1: preparation — candidate events from the catalogs");
    println!(
        "catalog: {} events ({} Intel, {} AMD, {} common)",
        Event::ALL.len(),
        Event::ALL
            .iter()
            .filter(|e| e.desc().vendor == tet_pmu::Vendor::Intel)
            .count(),
        Event::ALL
            .iter()
            .filter(|e| e.desc().vendor == tet_pmu::Vendor::Amd)
            .count(),
        Event::ALL
            .iter()
            .filter(|e| e.desc().vendor == tet_pmu::Vendor::Common)
            .count(),
    );

    // ---- Stage 2: online collection --------------------------------------
    section("Stage 2: online collection — 32 runs per scenario knob");
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0);
    }
    let collector = Collector::new(32);
    let not_triggered = collector.collect(|_| {
        let before = sc.machine.cpu().pmu.snapshot();
        gadget.measure(&mut sc.machine, 0);
        sc.machine.cpu().pmu.snapshot().delta(&before)
    });
    let triggered = collector.collect(|run| {
        // De-train between triggered samples, as the real 0..=255 sweep
        // does implicitly (one hit per 256 probes). The de-train count
        // varies per run so the gshare history context never repeats —
        // a fixed period would let the predictor learn the pattern.
        for d in 0..(3 + run as u64 % 7) {
            gadget.measure(&mut sc.machine, (run as u64 * 3 + d) % 64);
        }
        let before = sc.machine.cpu().pmu.snapshot();
        gadget.measure(&mut sc.machine, b'S' as u64);
        sc.machine.cpu().pmu.snapshot().delta(&before)
    });
    println!("collected 2 x 32 runs on {}", cfg.name);

    // ---- Stage 3: offline analysis ----------------------------------------
    section("Stage 3: offline analysis — differential filtering (|delta| >= 0.5)");
    let report = DifferentialReport::compare(&not_triggered, &triggered, 0.5);
    print!("{}", report.to_table("not trigger", "trigger"));
    println!(
        "{} of {} events reacted to the Jcc-trigger knob",
        report.deltas().len(),
        Event::ALL.len()
    );

    for (unit, rq) in [
        (Unit::Frontend, "RQ1 (frontend)"),
        (Unit::Backend, "RQ2 (backend/pipeline)"),
        (Unit::Memory, "RQ3 (memory subsystem)"),
    ] {
        section(rq);
        let mut any = false;
        for d in report.deltas_for_unit(unit) {
            any = true;
            println!(
                "  {:<48} {:>9.1} -> {:>9.1}",
                d.event.name(),
                d.baseline,
                d.variant
            );
        }
        if !any {
            println!("  (no reactive events in this unit)");
        }
    }

    // The paper's key conclusions from this analysis:
    let misp = report
        .deltas()
        .iter()
        .find(|d| d.event == Event::BrMispExecAllBranches)
        .expect("BR_MISP_EXEC.ALL_BRANCHES must react");
    assert!(
        misp.variant > misp.baseline,
        "trigger adds an executed mispredict"
    );
    let resteer = report
        .deltas()
        .iter()
        .find(|d| d.event == Event::IntMiscClearResteerCycles)
        .expect("CLEAR_RESTEER must react");
    assert!(
        resteer.variant > resteer.baseline,
        "trigger adds resteer cycles"
    );
    println!("\nanswers reproduced: BPU resteer (RQ1) + recovery stall (RQ2) drive the TET delta");

    let mut rep = RunReport::new("fig2_toolset");
    rep.set_meta("cpu", "kaby_lake_i7_7700");
    rep.set_meta("figure", "2");
    rep.counter("catalog_events", Event::ALL.len() as u64);
    rep.counter("reactive_events", report.deltas().len() as u64);
    for d in report.deltas() {
        rep.scalar(&format!("delta.{}", d.event.name()), d.variant - d.baseline);
    }
    write_report(&rep);
}
