//! Leak a whole kernel message with TET-Meltdown, then show the same
//! leak failing on fixed silicon and being out-run by the cache-based
//! baseline's detectability.
//!
//! Run: `cargo run --release -p whisper --example leak_secret`

use tet_uarch::CpuConfig;
use whisper::attacks::TetMeltdown;
use whisper::baseline::{CacheAttackDetector, FlushReloadMeltdown};
use whisper::scenario::{Scenario, ScenarioOptions};

fn main() {
    let secret = b"The TET channel needs no cache".to_vec();
    let opts = ScenarioOptions {
        kernel_secret: secret.clone(),
        interrupt_period: 9973, // some OS timer noise
        ..ScenarioOptions::default()
    };

    // --- the vulnerable machine ------------------------------------------
    let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &opts);
    println!(
        "[i7-7700] leaking {} bytes from {:#x}...",
        secret.len(),
        sc.kernel_secret_va
    );
    let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, secret.len());
    println!(
        "[i7-7700] recovered: {:?}",
        String::from_utf8_lossy(&report.recovered)
    );
    println!(
        "[i7-7700] {:.1} B/s simulated, error {:.1}%\n",
        report.bytes_per_sec,
        report.error_against(&secret) * 100.0
    );
    assert_eq!(report.recovered, secret);

    // --- the fixed machine -------------------------------------------------
    let mut sc = Scenario::new(CpuConfig::comet_lake_i9_10980xe(), &opts);
    let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 8);
    println!(
        "[i9-10980XE] silicon-fixed core recovered only: {:?} (garbage, as it should)\n",
        String::from_utf8_lossy(&report.recovered)
    );
    assert!(!report.succeeded(&secret[..8]));

    // --- stealth: the detector sees Flush+Reload, not TET -------------------
    let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &opts);
    FlushReloadMeltdown::prepare(&mut sc.machine);
    let detector = CacheAttackDetector::default();

    let before = sc.machine.cpu().pmu.snapshot();
    let _ = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
    let fr = detector.inspect(&sc.machine.cpu().pmu.snapshot().delta(&before));

    let before = sc.machine.cpu().pmu.snapshot();
    let _ = TetMeltdown::default().leak_byte(&mut sc.machine, sc.kernel_secret_va);
    let tet = detector.inspect(&sc.machine.cpu().pmu.snapshot().delta(&before));

    println!("cache-anomaly detector on one leaked byte:");
    println!(
        "  Flush+Reload: flagged={} (score {:.2}, {} clflush)",
        fr.flagged, fr.score, fr.clflushes
    );
    println!(
        "  TET-MD:       flagged={} (score {:.2}, {} clflush)",
        tet.flagged, tet.score, tet.clflushes
    );
    assert!(fr.flagged && !tet.flagged);
}
