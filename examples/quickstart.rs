//! Quickstart: measure the TET side channel with your own eyes.
//!
//! Builds the Figure 1a gadget on a simulated i7-7700, plants a secret
//! byte behind a kernel page, and shows the transient-execution-timing
//! difference that carries the whole paper: the in-window Jcc triggered
//! by the right test value makes the measured ToTE *longer*.
//!
//! Run: `cargo run -p whisper --example quickstart`

use tet_uarch::CpuConfig;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};

fn main() {
    // A simulated Kaby Lake machine with a KASLR'd kernel whose first
    // image page holds our secret.
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    println!("machine: {} ({})", cfg.name, cfg.uarch);
    println!("kernel base (hidden by KASLR): {:#x}", sc.kernel.base);
    println!("secret byte planted at {:#x}\n", sc.kernel_secret_va);

    // The Figure 1a gadget: a faulting kernel load opens the transient
    // window; `cmp secret, test; je` runs inside it; rdtsc brackets it.
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0); // warm up
    }

    println!("test value sweep (every 16th value shown):");
    let mut best = (0u64, 0u8);
    for test in 0..=255u8 {
        let tote = gadget
            .measure(&mut sc.machine, test as u64)
            .expect("the suppressed fault always completes");
        if tote > best.0 {
            best = (tote, test);
        }
        if test % 16 == 0 || test == b'S' {
            let marker = if test == b'S' { "  <-- the secret" } else { "" };
            println!(
                "  test {test:3} ({:?}): ToTE = {tote} cycles{marker}",
                test as char
            );
        }
    }
    println!(
        "\nargmax of ToTE: test value {} ({:?}) — recovered the secret without\n\
         reading it architecturally, without a probe array, without one clflush.",
        best.1, best.1 as char
    );
    assert_eq!(best.1, b'S');
}
