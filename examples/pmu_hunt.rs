//! Hunt for the root cause of a timing channel with the PMU toolset —
//! the Figure 2 workflow as a library user would drive it.
//!
//! We point the toolset at the TET gadget, flip one knob ("does the
//! in-window Jcc trigger?"), and let differential filtering tell us which
//! microarchitectural events react — reproducing the paper's RQ1/RQ2
//! answers in a few lines of user code.
//!
//! Run: `cargo run -p whisper --example pmu_hunt`

use tet_pmu::{Collector, DifferentialReport, Unit};
use tet_uarch::CpuConfig;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};

fn main() {
    let cfg = CpuConfig::skylake_i7_6700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0);
    }

    // Online collection: 24 runs per knob position, with varying
    // de-training between triggered samples (as the real sweep has).
    let collector = Collector::new(24);
    let baseline = collector.collect(|_| {
        let before = sc.machine.cpu().pmu.snapshot();
        gadget.measure(&mut sc.machine, 0);
        sc.machine.cpu().pmu.snapshot().delta(&before)
    });
    let triggered = collector.collect(|run| {
        for d in 0..(3 + run as u64 % 7) {
            gadget.measure(&mut sc.machine, (run as u64 * 3 + d) % 64);
        }
        let before = sc.machine.cpu().pmu.snapshot();
        gadget.measure(&mut sc.machine, b'S' as u64);
        sc.machine.cpu().pmu.snapshot().delta(&before)
    });

    // Offline analysis: differential filtering.
    let report = DifferentialReport::compare(&baseline, &triggered, 0.5);
    println!("{}", report.to_table("Jcc not trigger", "Jcc trigger"));

    for (unit, q) in [
        (Unit::Frontend, "RQ1: how does the frontend react?"),
        (Unit::Backend, "RQ2: how does the backend react?"),
        (Unit::Memory, "RQ3: how does the memory subsystem react?"),
    ] {
        println!("{q}");
        let mut any = false;
        for d in report.deltas_for_unit(unit) {
            any = true;
            println!(
                "  {:<48} {:>8.1} -> {:>8.1}",
                d.event.name(),
                d.baseline,
                d.variant
            );
        }
        if !any {
            println!("  (quiet)");
        }
        println!();
    }
    println!(
        "conclusion (matches the paper): the triggered Jcc adds an executed mispredict,\n\
         a frontend resteer and a recovery stall — the stall *is* the covert channel."
    );
}
