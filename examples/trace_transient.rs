//! Watch the transient execution happen, µop by µop.
//!
//! Runs the TET-Meltdown gadget with per-µop lifecycle tracing and
//! renders a pipeline chart: which µops retired (architectural), which
//! executed transiently and were squashed — and how the triggered Jcc's
//! misprediction reshapes the window.
//!
//! It also attaches a structured trace sink and exports the full event
//! stream (µop slices, faults, resteers, cache/TLB activity) as Chrome
//! trace JSON — load `target/reports/trace_transient.chrome.json` in
//! <https://ui.perfetto.dev> to scrub through the transient window.
//!
//! Run: `cargo run -p whisper --example trace_transient`

use std::sync::Arc;

use tet_isa::Reg;
use tet_obs::{ChromeTrace, MemorySink, SinkHandle};
use tet_uarch::{CpuConfig, RunConfig, SquashReason, UopFate};
use whisper::gadget::{TetGadget, TetGadgetSpec, TransientBegin};
use whisper::scenario::{Scenario, ScenarioOptions};

fn render(trace: &[tet_uarch::UopTrace], total_cycles: u64) {
    let width = 100usize;
    let scale = |c: u64| -> usize { (c as usize * (width - 1)) / total_cycles.max(1) as usize };
    println!(
        "{:<4} {:<26} {:<10} timeline (. renamed, = executing, R retired, x squashed)",
        "id", "inst", "fate"
    );
    for t in trace {
        let mut line = vec![b' '; width];
        let start = scale(t.renamed_at);
        let exec = t.started_at.map(scale);
        let done = t.done_at.map(scale);
        let (end, endch, fate) = match t.fate {
            UopFate::Retired { at } => (scale(at), b'R', "retired".to_string()),
            UopFate::Squashed { at, reason } => (
                scale(at),
                b'x',
                match reason {
                    SquashReason::BranchMispredict => "SQ:branch",
                    SquashReason::Fault => "SQ:fault",
                    SquashReason::TxnAbort => "SQ:abort",
                }
                .to_string(),
            ),
            UopFate::InFlight => (width - 1, b'?', "in-flight".to_string()),
        };
        for c in line.iter_mut().take(end + 1).skip(start) {
            *c = b'.';
        }
        if let (Some(e), Some(d)) = (exec, done) {
            for c in line.iter_mut().take(d.min(end) + 1).skip(e) {
                *c = b'=';
            }
        }
        line[end] = endch;
        println!(
            "{:<4} {:<26} {:<10} {}",
            t.id,
            format!("{}", t.inst),
            fate,
            String::from_utf8_lossy(&line)
        );
    }
}

fn main() {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(
        cfg.clone(),
        &ScenarioOptions {
            kernel_secret: b"S".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let gadget = TetGadget::build(TetGadgetSpec {
        begin: TransientBegin::SignalHandler,
        ..TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg)
    });
    for _ in 0..4 {
        gadget.measure(&mut sc.machine, 0); // steady state
    }

    for (label, slug, test) in [
        ("NOT TRIGGERED (test != secret)", "not_triggered", 0u64),
        ("TRIGGERED (test == 'S')", "triggered", b'S' as u64),
    ] {
        let recorder = Arc::new(MemorySink::new());
        let r = sc.machine.run(
            &gadget.program,
            &RunConfig {
                handler_pc: Some(gadget.handler_pc),
                init_regs: vec![(Reg::Rbx, test)],
                trace_uops: true,
                sink: SinkHandle::attached(recorder.clone()),
                ..RunConfig::default()
            },
        );
        println!("\n=== {label}: ToTE = {} cycles ===", r.regs.get(Reg::Rax));
        render(&r.uop_trace.expect("requested"), r.cycles);

        let events = recorder.drain();
        let name = format!("trace_transient ({slug})");
        let json = ChromeTrace::new(&name, events).to_json();
        let dir = std::env::var("TET_REPORT_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| std::path::PathBuf::from("target/reports"));
        std::fs::create_dir_all(&dir).expect("report dir");
        let path = dir.join(format!("trace_transient.{slug}.chrome.json"));
        std::fs::write(&path, json).expect("write chrome trace");
        println!(
            "chrome trace: {} (load in https://ui.perfetto.dev)",
            path.display()
        );
    }
    println!(
        "\nthe triggered run shows the in-window Jcc squashing its own shadow\n\
         (SQ:branch) before the faulting load's squash (SQ:fault) — and the\n\
         retirement of the measurement tail sliding right: that slide IS the\n\
         Whisper channel."
    );
}
