//! Break KASLR through the TET channel, with every defense of §4.5
//! stacked on: KPTI, FLARE, and a Docker container.
//!
//! Run: `cargo run --release -p whisper --example break_kaslr`

use tet_os::ContainerEnv;
use tet_uarch::CpuConfig;
use whisper::attacks::TetKaslr;
use whisper::baseline::PrefetchKaslr;
use whisper::scenario::{Scenario, ScenarioOptions};

fn main() {
    let opts = ScenarioOptions {
        seed: 0xB10C,
        kpti: true,
        flare: true,
        container: ContainerEnv::docker_24(),
        ..ScenarioOptions::default()
    };

    let mut sc = Scenario::new(CpuConfig::comet_lake_i9_10980xe(), &opts);
    println!(
        "environment: {} / KPTI on / FLARE on / Docker {} ({})",
        sc.machine.config().name,
        sc.container.version,
        sc.container.runtime,
    );
    println!(
        "(true kernel base, known only to us: {:#x})\n",
        sc.kernel.base
    );

    // The state-of-the-art baseline is blind here: FLARE's dummy
    // mappings give every candidate slot an identical full-depth walk.
    let baseline = PrefetchKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
    println!(
        "prefetch baseline: {}",
        match baseline.found_base {
            Some(b) => format!("claims {b:#x} (wrong)"),
            None => "sees a featureless sweep — defended".to_string(),
        }
    );

    // TET probes the *fault path*: FLARE dummies walk-retry like
    // unmapped pages, the KPTI trampoline still fills the TLB.
    let mut sc = Scenario::new(CpuConfig::comet_lake_i9_10980xe(), &opts);
    let attack = TetKaslr {
        assume_kpti: true,
        ..TetKaslr::default()
    };
    let result = attack.break_kaslr(&mut sc.machine, &sc.kernel);
    println!(
        "TET-KASLR: probed {} slots in {:.6} simulated s -> base {:#x} ({})",
        result.probes,
        result.seconds,
        result.found_base.expect("the sweep found the trampoline"),
        if result.success { "CORRECT" } else { "wrong" },
    );
    assert!(result.success);

    // The per-slot timing profile around the hit, for the curious.
    let hit_slot = tet_os::layout::slot_of(sc.kernel.trampoline).expect("in region");
    println!("\nper-slot ToTE around the trampoline slot {hit_slot}:");
    let lo = hit_slot.saturating_sub(3) as usize;
    for (i, tote) in result.slot_totes[lo..(hit_slot as usize + 4).min(512)]
        .iter()
        .enumerate()
    {
        let slot = lo + i;
        let marker = if slot as u64 == hit_slot {
            "  <-- mapped (the KPTI trampoline)"
        } else {
            ""
        };
        println!("  slot {slot:3}: {tote} cycles{marker}");
    }
}
