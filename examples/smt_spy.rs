//! The §4.4 SMT covert channel and the cross-thread Zombieload, end to
//! end: two programs sharing one simulated core, leaking through the
//! pipeline-flush bubble and the fill buffers respectively.
//!
//! Run: `cargo run --release -p whisper --example smt_spy`

use tet_uarch::CpuConfig;
use whisper::attacks::SmtZombieload;
use whisper::smt::SmtTetChannel;

fn main() {
    let cfg = CpuConfig::kaby_lake_i7_7700();

    // --- the §4.4 bit channel ---------------------------------------------
    println!("SMT pipeline-flush covert channel on {}:", cfg.name);
    let message = b"hi";
    let bits: Vec<u8> = message
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1))
        .collect();
    let rep = SmtTetChannel::prototype().transmit(&cfg, 99, &bits);
    let decoded: Vec<u8> = rep
        .received
        .chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b))
        .collect();
    println!(
        "  sent {:?} as {} bits -> received {:?} ({:.1}% bit error)",
        String::from_utf8_lossy(message),
        bits.len(),
        String::from_utf8_lossy(&decoded),
        rep.bit_error_rate * 100.0
    );
    assert_eq!(decoded, message);

    // --- the cross-thread Zombieload ---------------------------------------
    println!("\ncross-thread TET-Zombieload (victim on thread 0, attacker on thread 1):");
    let secret = b'K';
    let leak = SmtZombieload::default().sample_byte(&cfg, 7, secret, 0);
    println!(
        "  victim's byte {:#04x} ({:?}) -> attacker sampled {:#04x} ({:?})",
        secret, secret as char, leak.value, leak.value as char
    );
    assert_eq!(leak.value, secret);

    // And the same on MDS-fixed silicon:
    let fixed = CpuConfig::comet_lake_i9_10980xe();
    let leak = SmtZombieload::default().sample_byte(&fixed, 7, secret, 0);
    println!(
        "  on {} (MDS-fixed): sampled {:#04x} — garbage, as it should be",
        fixed.name, leak.value
    );
    assert_ne!(leak.value, secret);
}
