//! Write your own TET gadget as plain assembly text and measure it.
//!
//! The `tet_isa::text` module parses an Intel-flavoured syntax, so gadget
//! variants can be explored without touching the builder API. Here we
//! write the Listing 2 KASLR probe by hand and sweep it over a mapped
//! and an unmapped kernel address.
//!
//! Run: `cargo run -p whisper --example custom_gadget`

use tet_isa::text::{disassemble, parse};
use tet_uarch::CpuConfig;
use whisper::gadget::measure_custom;
use whisper::scenario::{Scenario, ScenarioOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sc = Scenario::new(
        CpuConfig::comet_lake_i9_10980xe(),
        &ScenarioOptions {
            seed: 7,
            ..ScenarioOptions::default()
        },
    );
    let mapped = sc.kernel.base;
    let unmapped = tet_os::layout::slot_base((sc.kernel.slot + 100) % 512);

    // The Listing 2 probe, written as text. `{}` is the candidate.
    let probe_src = |candidate: u64| {
        format!(
            r#"
            rdtsc
            mov r8, rax
            lfence
            ldb rax, [{candidate:#x}]   ; the faulting probe access
            sub r11, r11                ; zf := 1
            je matched                  ; always-taken in-window jcc
            nop
        matched:
            nop
        handler:
            lfence
            rdtsc
            sub rax, r8
            halt
            "#
        )
    };

    // The handler label's index: parse once and count up to `handler`.
    // (The text format resolves labels internally; for the run config we
    // need the numeric index — it is the first `lfence` after `matched`.)
    let prog = parse(&probe_src(mapped))?;
    let handler_pc = prog.len() - 4; // lfence rdtsc sub halt
    println!(
        "gadget ({} instructions):\n{}",
        prog.len(),
        disassemble(&prog)
    );

    let mut probe = |candidate: u64| -> u64 {
        let prog = parse(&probe_src(candidate)).expect("template parses");
        // Warm the code path, then measure with a cold TLB.
        measure_custom(&mut sc.machine, &prog, Some(handler_pc), 0);
        sc.machine.flush_tlbs();
        let (tote, _) = measure_custom(&mut sc.machine, &prog, Some(handler_pc), 0)
            .expect("suppressed fault completes");
        tote
    };

    let t_mapped = probe(mapped);
    let t_unmapped = probe(unmapped);
    println!("probe of   mapped candidate {mapped:#x}: ToTE = {t_mapped} cycles");
    println!("probe of unmapped candidate {unmapped:#x}: ToTE = {t_unmapped} cycles");
    println!(
        "\nthe unmapped probe is {} cycles slower — the retried page walk that\n\
         TET-KASLR keys on, measured from a hand-written text gadget.",
        t_unmapped.saturating_sub(t_mapped)
    );
    assert!(t_unmapped > t_mapped);
    Ok(())
}
